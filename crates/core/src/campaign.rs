//! Fault-injection campaigns.
//!
//! A campaign evaluates classification accuracy on a fixed image set under
//! a sequence of fault configurations. The two campaign shapes of the paper:
//!
//! * **random subsets** (Fig. 2): for each trial, `k` distinct multipliers
//!   are drawn uniformly and all forced to the same value;
//! * **exhaustive single** (Fig. 3): every one of the 64 multipliers is
//!   faulted alone, once per injected value.
//!
//! Campaigns use **two-level scheduling** over a fleet of device instances
//! (mirroring how independent FPGA boards would split a campaign):
//!
//! 1. an outer lock-free cursor hands out `(targets, kind)` work items to
//!    worker groups, exactly one fault configuration in flight per group;
//! 2. each group owns a [`DevicePool`] and shards the evaluation batch
//!    across its members, so when the work list is narrower than the thread
//!    budget (one configuration, many images) the spare threads still pull
//!    their weight.
//!
//! With `threads` ≤ work items every pool has one device and the scheduler
//! degenerates to the classic one-device-per-worker loop; with a single
//! work item it degenerates to pure batch sharding. Either way, records are
//! bit-identical to the single-threaded, single-device run.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use nvfi_accel::{FaultConfig, FaultKind, IdleLanePolicy};
use nvfi_compiler::regmap::{MultId, TOTAL_MULTS};
use nvfi_compiler::verify::{fault_reachability, verify_plan};
use nvfi_compiler::ExecutionPlan;
use nvfi_dataset::Dataset;
use nvfi_obs::{progress, trace};
use nvfi_quant::QuantModel;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::platform::{EmulationPlatform, PlatformConfig, PlatformError};
use crate::pool::{DevicePool, GoldenActivationCache, QuantizedEvalSet};

pub use nvfi_compiler::verify::VerifyMode;

/// Which multipliers each fault configuration targets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TargetSelection {
    /// `trials` random draws of `k` distinct multipliers (seeded).
    RandomSubsets {
        /// Number of simultaneously faulted multipliers.
        k: usize,
        /// Number of independent draws.
        trials: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Each of the 64 multipliers alone.
    ExhaustiveSingle,
    /// Explicit target sets.
    Fixed(Vec<Vec<MultId>>),
}

/// Default golden-prefix cache budget
/// ([`CampaignSpec::golden_cache_bytes`]): large enough to checkpoint any
/// fixture in this repository whole, small enough that an oversized
/// evaluation set falls back to recomputing prefixes instead of exhausting
/// host memory.
pub const GOLDEN_CACHE_DEFAULT_BYTES: usize = 256 << 20;

/// A campaign specification.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignSpec {
    /// Target selection strategy.
    pub selection: TargetSelection,
    /// Fault kinds to inject (each target set is run once per kind).
    pub kinds: Vec<FaultKind>,
    /// Number of evaluation images (clamped to the dataset size).
    pub eval_images: usize,
    /// Total device/thread budget of the campaign. Devices are grouped into
    /// per-work-item pools by the two-level scheduler (see [`Campaign::run`]).
    pub threads: usize,
    /// Requested devices per fault configuration ([`DevicePool`] size).
    /// `0` (the default) auto-sizes: `threads` devices are spread evenly
    /// over `min(threads, work items)` pools, so a narrow work list gets
    /// wide pools and a wide work list gets one device per worker. A
    /// non-zero request is clamped to the `threads` budget, which is always
    /// spread in full over the resulting groups ([`Campaign::pool_layout`]).
    pub pool_devices: usize,
    /// Optional transient fault window (in per-inference MAC cycles),
    /// applied alongside every injected fault configuration. Only the plan
    /// ops whose MAC-cycle span intersects the window run the exact engine
    /// (op-scoped execution); the fault-free prefix is restored from a
    /// campaign-lifetime [`GoldenActivationCache`] (see
    /// [`CampaignSpec::golden_cache_bytes`]). The baseline pass stays
    /// fault- and window-free. Validated against the compiled plan up
    /// front: a window that cannot overlap any retired MAC cycle is
    /// rejected instead of silently running a fault-free campaign.
    pub fault_window: Option<Range<u64>>,
    /// Worker **processes** of a distributed campaign (`NVFI_WORKERS` in
    /// the experiment drivers). `0` (the default) runs in-process. This
    /// knob is consumed by the `nvfi-dist` coordinator
    /// (`nvfi_dist::run_campaign`), which spawns/attaches that many worker
    /// processes, ships them the compiled plan + DRAM weight image once,
    /// and schedules work items (and, when the work list is narrower than
    /// the worker fleet, image shards of each item) across them —
    /// bit-identical to the in-process path. [`Campaign::run`] itself
    /// always executes in-process, whatever this field says: it is the
    /// fallback the coordinator delegates to when `workers == 0`.
    pub workers: usize,
    /// Byte budget of the golden-prefix activation cache used by windowed
    /// campaigns (`NVFI_GOLDEN_CACHE` in the experiment drivers). Defaults
    /// to [`GOLDEN_CACHE_DEFAULT_BYTES`] (256 MiB — far more than any
    /// fixture here needs, but bounded, so a huge evaluation set degrades
    /// to recomputing prefixes instead of exhausting memory). A smaller
    /// budget checkpoints only the leading `budget / stride` images and
    /// the rest recompute their prefix (bit-identical, slower); `0`
    /// disables the cache entirely; `usize::MAX` removes the bound.
    pub golden_cache_bytes: usize,
    /// Checkpoint file of a **distributed** campaign (`NVFI_CHECKPOINT` in
    /// the experiment drivers). When set, the `nvfi-dist` coordinator
    /// persists completed shards there as they land and a restarted
    /// coordinator resumes the campaign, redoing only unfinished shards —
    /// with records bit-identical to an uninterrupted run. The file is
    /// removed once the campaign completes. Ignored by the in-process
    /// [`Campaign::run`], which has no coordinator process to lose.
    pub checkpoint_path: Option<std::path::PathBuf>,
    /// Static verification at plan load ([`VerifyMode::Warn`] by default):
    /// the compiled plan is checked against the `nvfi_compiler::verify`
    /// invariant catalogue (strict mode turns diagnostics into
    /// [`PlatformError::Verify`], warn mode prints them), and every work
    /// item is classified by the fault-reachability analysis — provably
    /// masked items skip emulation entirely and their records are
    /// synthesized from the fault-free predictions (bit-identical by
    /// construction; counted in [`CampaignResult::masked_static`]).
    /// [`VerifyMode::Off`] disables both. Independent of all this, fault
    /// kinds that are provable no-ops (`FaultKind::validate`) are always
    /// rejected up front.
    pub verify: VerifyMode,
    /// Progress lines on stderr.
    pub verbose: bool,
}

impl Default for CampaignSpec {
    /// An exhaustive single-multiplier sweep, stuck-at-zero, single thread —
    /// override what the experiment needs via struct update syntax.
    fn default() -> Self {
        CampaignSpec {
            selection: TargetSelection::ExhaustiveSingle,
            kinds: vec![FaultKind::StuckAtZero],
            eval_images: 100,
            threads: 1,
            pool_devices: 0,
            workers: 0,
            fault_window: None,
            golden_cache_bytes: GOLDEN_CACHE_DEFAULT_BYTES,
            checkpoint_path: None,
            verify: VerifyMode::default(),
            verbose: false,
        }
    }
}

/// Runs the plan verifier according to `mode`: [`VerifyMode::Off`] skips,
/// [`VerifyMode::Warn`] prints every diagnostic to stderr,
/// [`VerifyMode::Strict`] turns any diagnostic into
/// [`PlatformError::Verify`]. Shared by [`Campaign::run`] and the
/// `nvfi-dist` coordinator so both entry points enforce the same policy.
///
/// # Errors
///
/// Returns [`PlatformError::Verify`] in strict mode when the plan has any
/// diagnostic.
pub fn run_plan_verifier(plan: &ExecutionPlan, mode: VerifyMode) -> Result<(), PlatformError> {
    if mode == VerifyMode::Off {
        return Ok(());
    }
    let diags = verify_plan(plan);
    if diags.is_empty() {
        return Ok(());
    }
    if mode == VerifyMode::Strict {
        return Err(PlatformError::Verify(format!(
            "plan fails verification with {} diagnostic(s): {}",
            diags.len(),
            diags
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ")
        )));
    }
    for d in &diags {
        progress::note(format!("nvfi-verify warning: {d}"));
    }
    Ok(())
}

/// Rejects campaign fault kinds that are provable no-ops (see
/// [`FaultKind::validate`]) — shared by [`Campaign::run`] and the
/// `nvfi-dist` coordinator.
///
/// # Errors
///
/// Returns [`PlatformError::Verify`] naming the offending kind.
pub fn validate_fault_kinds(kinds: &[FaultKind]) -> Result<(), PlatformError> {
    for k in kinds {
        k.validate().map_err(PlatformError::Verify)?;
    }
    Ok(())
}

/// Whether `(targets, kind)` under `window` is provably masked on `plan`:
/// a thin adapter from campaign-level types onto
/// [`nvfi_compiler::verify::fault_reachability`]. `gated` is the platform's
/// idle-lane policy. `ProvablyMasked` is sound — the exact engine cannot
/// produce anything but the fault-free predictions — which is what lets
/// campaigns skip these items bit-identically.
#[must_use]
pub fn fault_provably_masked(
    plan: &ExecutionPlan,
    targets: &[MultId],
    kind: FaultKind,
    gated: bool,
    window: Option<&Range<u64>>,
) -> bool {
    let lanes: Vec<usize> = targets.iter().map(|t| t.lane()).collect();
    let (fsel, fdata, xor) = kind.registers();
    fault_reachability(plan, &lanes, fsel, fdata, xor, gated, window).is_provably_masked()
}

/// Per-image outcome taxonomy of one fault injection, following the usual
/// FT-analysis classification (FIdelity/SAFFIRA style): a fault can be
/// architecturally **masked** (prediction unchanged vs. the fault-free run)
/// or cause **silent data corruption** (prediction flipped). Accuracy alone
/// hides masking; this exposes it.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Images whose prediction equals the fault-free prediction.
    pub masked: usize,
    /// Images whose prediction changed (silent data corruption).
    pub sdc: usize,
}

impl OutcomeCounts {
    /// Fraction of evaluated images with silent data corruption.
    #[must_use]
    pub fn sdc_rate(&self) -> f64 {
        let n = self.masked + self.sdc;
        if n == 0 {
            return 0.0;
        }
        self.sdc as f64 / n as f64
    }
}

/// One fault-injection measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct FiRecord {
    /// Which multipliers were faulted.
    pub targets: Vec<MultId>,
    /// The injected fault.
    pub kind: FaultKind,
    /// Classification accuracy under the fault.
    pub accuracy: f64,
    /// Accuracy change vs. baseline in percentage points (negative = drop).
    pub drop_pct: f64,
    /// Masked / silent-data-corruption breakdown vs. the fault-free
    /// predictions.
    pub outcomes: OutcomeCounts,
}

/// Fraction of `preds` equal to `labels` — the one accuracy fold of the
/// campaign stack, shared by [`Campaign::run`] (baseline and, via
/// [`FiRecord::from_preds`], every record) and the `nvfi-dist` coordinator.
///
/// # Panics
///
/// Panics if the lengths differ.
#[must_use]
pub fn prediction_accuracy(preds: &[u8], labels: &[u8]) -> f64 {
    assert_eq!(preds.len(), labels.len(), "one prediction per label");
    if preds.is_empty() {
        return 0.0;
    }
    preds.iter().zip(labels).filter(|(p, y)| p == y).count() as f64 / preds.len() as f64
}

impl FiRecord {
    /// Folds one fault configuration's predictions into a record: accuracy
    /// against `labels`, masked/SDC classification against the fault-free
    /// `clean_preds`, drop against `baseline_accuracy` (a fraction, not a
    /// percentage). This is **the** record fold — the in-process
    /// [`Campaign::run`] and the `nvfi-dist` coordinator both call it, so
    /// their advertised bit-identity is structural rather than two copies
    /// of the same arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `preds`, `clean_preds` and `labels` do not all have the
    /// same length.
    #[must_use]
    pub fn from_preds(
        targets: Vec<MultId>,
        kind: FaultKind,
        preds: &[u8],
        clean_preds: &[u8],
        labels: &[u8],
        baseline_accuracy: f64,
    ) -> Self {
        assert_eq!(preds.len(), clean_preds.len(), "one clean prediction each");
        let accuracy = prediction_accuracy(preds, labels);
        let mut outcomes = OutcomeCounts::default();
        for (p, c) in preds.iter().zip(clean_preds) {
            if p == c {
                outcomes.masked += 1;
            } else {
                outcomes.sdc += 1;
            }
        }
        FiRecord {
            targets,
            kind,
            accuracy,
            drop_pct: (accuracy - baseline_accuracy) * 100.0,
            outcomes,
        }
    }
}

/// A completed campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignResult {
    /// Fault-free accuracy on the evaluation set.
    pub baseline_accuracy: f64,
    /// One record per (target set, kind), in deterministic order.
    pub records: Vec<FiRecord>,
    /// Work items the fault-reachability analysis proved masked and skipped
    /// without emulation (their records are synthesized from the fault-free
    /// predictions and count no inferences). `0` when verification is off.
    pub masked_static: usize,
    /// Total emulated inferences.
    pub total_inferences: u64,
    /// Wall-clock seconds the campaign took.
    pub wall_seconds: f64,
}

impl CampaignResult {
    /// All accuracy drops in percentage points.
    #[must_use]
    pub fn drops_pct(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.drop_pct).collect()
    }

    /// Fault-injection evaluations per second of wall clock (each
    /// evaluation is `eval_images` emulated inferences).
    #[must_use]
    pub fn inferences_per_second(&self) -> f64 {
        if self.wall_seconds == 0.0 {
            return 0.0;
        }
        self.total_inferences as f64 / self.wall_seconds
    }

    /// Mean silent-data-corruption rate across all records.
    #[must_use]
    pub fn mean_sdc_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .map(|r| r.outcomes.sdc_rate())
            .sum::<f64>()
            / self.records.len() as f64
    }
}

/// Campaign runner bound to a model and platform configuration.
#[derive(Clone, Debug)]
pub struct Campaign {
    model: QuantModel,
    config: PlatformConfig,
}

impl Campaign {
    /// Creates a runner (devices are instantiated per worker at run time).
    #[must_use]
    pub fn new(model: &QuantModel, config: PlatformConfig) -> Self {
        Campaign {
            model: model.clone(),
            config,
        }
    }

    /// Expands the target selection into explicit target sets.
    #[must_use]
    pub fn expand_targets(selection: &TargetSelection) -> Vec<Vec<MultId>> {
        match selection {
            TargetSelection::RandomSubsets { k, trials, seed } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                let mut all: Vec<MultId> = MultId::all().collect();
                (0..*trials)
                    .map(|_| {
                        all.shuffle(&mut rng);
                        let mut set = all[..(*k).min(TOTAL_MULTS)].to_vec();
                        set.sort();
                        set
                    })
                    .collect()
            }
            TargetSelection::ExhaustiveSingle => MultId::all().map(|m| vec![m]).collect(),
            TargetSelection::Fixed(sets) => sets.clone(),
        }
    }

    /// Devices per worker group: the full `threads` budget spread over the
    /// outer scheduling width, remainder devices going to the leading
    /// groups. With `pool_devices == 0` the width is
    /// `min(threads, work_items)`; a non-zero `pool_devices` requests that
    /// group size instead, clamped to the thread budget — the layout never
    /// exceeds `threads` devices in total and never leaves budgeted threads
    /// idle (at least one group, never more groups than work items).
    #[must_use]
    pub fn pool_layout(threads: usize, work_items: usize, pool_devices: usize) -> Vec<usize> {
        let threads = threads.max(1);
        let work_items = work_items.max(1);
        let outer = if pool_devices == 0 {
            threads.min(work_items)
        } else {
            let per_group = pool_devices.min(threads);
            (threads / per_group).min(work_items).max(1)
        };
        let base = threads / outer;
        let rem = threads % outer;
        (0..outer).map(|i| base + usize::from(i < rem)).collect()
    }

    /// Runs the campaign on `eval` data.
    ///
    /// The evaluation split is quantized to i8 exactly **once**, up front
    /// (a campaign-lifetime [`QuantizedEvalSet`], mirroring the paper's
    /// quantize-at-bitstream-programming flow); every fault configuration
    /// and every device shard then classifies borrowed sub-views of that
    /// set with zero per-work-item quantization or pixel copies.
    ///
    /// Scheduling is two-level: an outer lock-free cursor over the expanded
    /// `(targets, kind)` work list, and — whenever the work list is narrower
    /// than `spec.threads` — inner sharding of each configuration's
    /// evaluation batch across the worker group's [`DevicePool`]. The
    /// baseline pass runs through the full fleet the same way. Records,
    /// `total_inferences` and record order are bit-identical to the
    /// single-device, single-threaded path for every `threads`,
    /// `pool_devices` and shard granularity.
    ///
    /// # Errors
    ///
    /// Propagates platform/device errors.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no kinds, zero evaluation images, or a target
    /// selection that expands to an empty work list
    /// (`TargetSelection::Fixed(vec![])` or `RandomSubsets { trials: 0, .. }`).
    pub fn run(
        &self,
        spec: &CampaignSpec,
        eval: &Dataset,
    ) -> Result<CampaignResult, PlatformError> {
        assert!(
            !spec.kinds.is_empty(),
            "campaign needs at least one fault kind"
        );
        assert!(spec.eval_images > 0, "campaign needs evaluation images");
        validate_fault_kinds(&spec.kinds)?;
        // The work list: (index, targets, kind).
        let targets = Self::expand_targets(&spec.selection);
        assert!(
            !targets.is_empty(),
            "campaign target selection expands to no target sets \
             (Fixed(vec![]) or RandomSubsets {{ trials: 0, .. }}): the result \
             would have no records, which downstream statistics \
             (FiveNum::from_sample) reject"
        );
        let mut work: Vec<(usize, Vec<MultId>, FaultKind)> = Vec::new();
        for t in &targets {
            for k in &spec.kinds {
                work.push((work.len(), t.clone(), *k));
            }
        }
        let eval = eval.take(spec.eval_images);
        let start = Instant::now();
        let _run_span = trace::span("campaign.run");

        // Quantize the evaluation split to i8 exactly once per campaign —
        // the software equivalent of the paper's flow, which quantizes the
        // evaluation set when the bitstream is programmed. Every work item
        // and every device shard below classifies borrowed sub-views of
        // this set; no per-work-item or per-shard re-quantization (asserted
        // by the `nvfi_quant::batch::quantization_passes` probe in
        // tests/quantize_once.rs).
        let qset = {
            let _s = trace::span("campaign.quantize");
            QuantizedEvalSet::build(&self.model, &eval.images)
        };

        // The device fleet: compile the plan once, clone it per member, one
        // pool of devices per outer worker group. Groups are capped at the
        // number of shards the evaluation batch can actually produce, so a
        // huge thread budget over a tiny eval set does not clone devices
        // that could never receive a shard.
        let max_shards = eval
            .len()
            .div_ceil(DevicePool::granularity(&self.config))
            .max(1);
        let mut layout = Self::pool_layout(spec.threads, work.len(), spec.pool_devices);
        for size in &mut layout {
            *size = (*size).min(max_shards);
        }
        let fleet_size: usize = layout.iter().sum();
        // One prototype device first: it validates the transient window
        // against the compiled plan and the execution mode *before* any
        // work is scheduled (a window that cannot overlap any MAC cycle
        // used to run a silent fault-free campaign at exact-engine cost),
        // and — still fault-free — captures the golden-prefix activation
        // cache windowed work items restore from.
        let mut proto = EmulationPlatform::assemble(&self.model, self.config)?;
        // Static verification at plan load, then fault reachability: work
        // items the analysis proves masked never reach a device — their
        // records are synthesized from the fault-free predictions after the
        // fleet runs, which is bit-identical by the analysis' soundness.
        run_plan_verifier(proto.plan(), spec.verify)?;
        let gated = self.config.accel.idle_lanes == IdleLanePolicy::Gated;
        let masked: Vec<bool> = if spec.verify == VerifyMode::Off {
            vec![false; work.len()]
        } else {
            work.iter()
                .map(|(_, targets, kind)| {
                    fault_provably_masked(
                        proto.plan(),
                        targets,
                        *kind,
                        gated,
                        spec.fault_window.as_ref(),
                    )
                })
                .collect()
        };
        let masked_static = masked.iter().filter(|&&m| m).count();
        if spec.verbose && masked_static > 0 {
            progress::note(format!(
                "  {masked_static}/{} work item(s) provably masked; skipping emulation",
                work.len()
            ));
        }
        let golden = match &spec.fault_window {
            Some(w) => {
                proto.accel().validate_fault_window(w)?;
                let _s = trace::span("campaign.golden_build");
                GoldenActivationCache::build(&mut proto, &qset, w, spec.golden_cache_bytes)?
            }
            None => None,
        };
        let mut fleet = DevicePool::from_device(proto, fleet_size);

        // Baseline through the same pool, sharded across the whole fleet:
        // accuracy plus the fault-free predictions used for masked/SDC
        // classification.
        let clean_preds = {
            let _s = trace::span("campaign.baseline");
            fleet.classify_i8(&qset)?
        };
        let baseline_accuracy = prediction_accuracy(&clean_preds, &eval.labels);

        let pools = fleet.split(&layout);
        // Lock-free work distribution: a fetch-add cursor hands out indices
        // and every worker group accumulates `(idx, record)` pairs
        // privately; the buffers are merged (and re-ordered by index) after
        // join, so the steady-state campaign loop takes no lock at all.
        let next = AtomicUsize::new(0);
        // Completion counter behind the progress lines: one monotonically
        // increasing `done/total` line per finished work item, regardless of
        // which group finished which index.
        let done = AtomicUsize::new(0);

        let mut worker_results: Vec<Vec<(usize, FiRecord)>> = Vec::with_capacity(pools.len());
        std::thread::scope(|scope| -> Result<(), PlatformError> {
            let mut handles = Vec::new();
            for (worker_id, mut pool) in pools.into_iter().enumerate() {
                let eval = &eval;
                let qset = &qset;
                let work = &work;
                let next = &next;
                let done = &done;
                let clean_preds = &clean_preds;
                let golden = &golden;
                let masked = &masked;
                handles.push(scope.spawn(
                    move || -> Result<Vec<(usize, FiRecord)>, PlatformError> {
                        let _ctx = trace::with_ids(trace::Ids {
                            worker: worker_id as u64,
                            ..Default::default()
                        });
                        let mut local: Vec<(usize, FiRecord)> = Vec::new();
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= work.len() {
                                break;
                            }
                            if masked[idx] {
                                // Provably masked: the record is synthesized
                                // from the fault-free predictions after join.
                                continue;
                            }
                            let _item_span = trace::span("campaign.item");
                            let (_, targets, kind) = &work[idx];
                            pool.inject(&FaultConfig::new(targets.clone(), *kind));
                            let preds = if spec.fault_window.is_some() {
                                pool.set_fault_window(spec.fault_window.clone())?;
                                // Windowed items run op-scoped per image,
                                // restoring the golden prefix when cached.
                                pool.classify_i8_golden(qset, golden.as_ref())?
                            } else {
                                pool.classify_i8(qset)?
                            };
                            pool.clear_faults();
                            let record = FiRecord::from_preds(
                                targets.clone(),
                                *kind,
                                &preds,
                                clean_preds,
                                &eval.labels,
                                baseline_accuracy,
                            );
                            if spec.verbose {
                                // `emit_tick` holds the renderer lock across
                                // the increment and the write, so the printed
                                // `done/total` is strictly monotonic; the
                                // `[worker k]` suffix attributes each item to
                                // its worker group, mirroring the per-worker
                                // attribution of distributed (`nvfi-dist`)
                                // progress lines.
                                progress::emit_tick(done, |finished| progress::Event::ItemDone {
                                    done: finished,
                                    total: work.len(),
                                    worker: worker_id,
                                    detail: format!(
                                        "{:?} on {} mult(s) -> {:.1}% (sdc {:.0}%)",
                                        kind,
                                        targets.len(),
                                        record.accuracy * 100.0,
                                        record.outcomes.sdc_rate() * 100.0
                                    ),
                                });
                            }
                            local.push((idx, record));
                        }
                        Ok(local)
                    },
                ));
            }
            for h in handles {
                worker_results.push(h.join().expect("campaign worker panicked")?);
            }
            Ok(())
        })?;

        let mut slots: Vec<Option<FiRecord>> = vec![None; work.len()];
        for (idx, rec) in worker_results.into_iter().flatten() {
            debug_assert!(slots[idx].is_none(), "duplicate record for work item {idx}");
            slots[idx] = Some(rec);
        }
        // Provably-masked items produce exactly the fault-free predictions,
        // so their records fold the clean predictions against themselves —
        // the same record the device would have produced, without running it.
        for (idx, is_masked) in masked.iter().enumerate() {
            if *is_masked {
                let (_, targets, kind) = &work[idx];
                debug_assert!(slots[idx].is_none(), "masked item {idx} was executed");
                slots[idx] = Some(FiRecord::from_preds(
                    targets.clone(),
                    *kind,
                    &clean_preds,
                    &clean_preds,
                    &eval.labels,
                    baseline_accuracy,
                ));
            }
        }
        let records: Vec<FiRecord> = slots
            .into_iter()
            .map(|r| r.expect("record missing"))
            .collect();
        let executed = records.len() - masked_static;
        let total_inferences = (executed as u64 + 1) * eval.len() as u64;
        // Close the campaign span before exporting so it lands in the ring;
        // the export is cumulative, so running under a `CampaignServer`
        // (which exports again at `stop()`) loses nothing.
        drop(_run_span);
        trace::maybe_export();
        Ok(CampaignResult {
            baseline_accuracy,
            records,
            masked_static,
            total_inferences,
            wall_seconds: start.elapsed().as_secs_f64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvfi_dataset::{SynthCifar, SynthCifarConfig};
    use nvfi_nn::fold::fold_resnet;
    use nvfi_nn::resnet::ResNet;
    use nvfi_quant::{quantize, QuantConfig};

    fn setup() -> (QuantModel, Dataset) {
        let data = SynthCifar::new(SynthCifarConfig {
            train: 16,
            test: 12,
            ..Default::default()
        })
        .generate();
        let net = ResNet::new(4, &[1, 1], 10, 3);
        let deploy = fold_resnet(&net, 32);
        let q = quantize(&deploy, &data.train.images, &QuantConfig::default()).unwrap();
        (q, data.test)
    }

    #[test]
    fn random_subsets_are_deterministic_distinct_and_sized() {
        let sel = TargetSelection::RandomSubsets {
            k: 5,
            trials: 20,
            seed: 9,
        };
        let a = Campaign::expand_targets(&sel);
        let b = Campaign::expand_targets(&sel);
        assert_eq!(a, b);
        for set in &a {
            assert_eq!(set.len(), 5);
            let uniq: std::collections::HashSet<_> = set.iter().collect();
            assert_eq!(uniq.len(), 5, "targets must be distinct");
        }
    }

    #[test]
    fn exhaustive_covers_all_64() {
        let sets = Campaign::expand_targets(&TargetSelection::ExhaustiveSingle);
        assert_eq!(sets.len(), 64);
        let all: std::collections::HashSet<_> = sets.iter().map(|s| s[0]).collect();
        assert_eq!(all.len(), 64);
    }

    #[test]
    fn pool_layout_conserves_the_thread_budget() {
        for threads in 1..=9usize {
            for work_items in 1..=9usize {
                for pool_devices in 0..=12usize {
                    let layout = Campaign::pool_layout(threads, work_items, pool_devices);
                    let total: usize = layout.iter().sum();
                    assert_eq!(
                        total, threads,
                        "layout {layout:?} must use the whole budget \
                         (threads={threads} work={work_items} pool={pool_devices})"
                    );
                    assert!(
                        layout.len() <= work_items,
                        "never more groups than work items"
                    );
                    assert!(layout.iter().all(|&s| s > 0));
                    // Even spread: group sizes differ by at most one.
                    let (lo, hi) = (layout.iter().min(), layout.iter().max());
                    assert!(hi.unwrap() - lo.unwrap() <= 1);
                }
            }
        }
        // Auto layout: wide work list => one device per group.
        assert_eq!(Campaign::pool_layout(3, 10, 0), vec![1, 1, 1]);
        // Narrow work list: the budget folds into wide pools.
        assert_eq!(Campaign::pool_layout(8, 1, 0), vec![8]);
        // Requested group size is honoured when it divides the budget...
        assert_eq!(Campaign::pool_layout(8, 4, 4), vec![4, 4]);
        // ...and clamped to the budget when it exceeds it.
        assert_eq!(Campaign::pool_layout(1, 3, 32), vec![1]);
    }

    #[test]
    fn campaign_runs_and_counts() {
        let (q, eval) = setup();
        let campaign = Campaign::new(&q, PlatformConfig::default());
        let spec = CampaignSpec {
            selection: TargetSelection::Fixed(vec![
                vec![MultId::new(0, 0)],
                vec![MultId::new(1, 1), MultId::new(2, 2)],
            ]),
            kinds: vec![FaultKind::StuckAtZero, FaultKind::Constant(-1)],
            eval_images: 8,
            threads: 1,
            verbose: false,
            ..Default::default()
        };
        let result = campaign.run(&spec, &eval).unwrap();
        assert_eq!(result.records.len(), 4);
        assert_eq!(result.total_inferences, 5 * 8);
        assert!(result.wall_seconds > 0.0);
        assert!((0.0..=1.0).contains(&result.baseline_accuracy));
        for r in &result.records {
            assert!((-100.0..=100.0).contains(&r.drop_pct));
            // Outcome taxonomy covers every evaluated image.
            assert_eq!(r.outcomes.masked + r.outcomes.sdc, 8);
            assert!((0.0..=1.0).contains(&r.outcomes.sdc_rate()));
        }
        assert!((0.0..=1.0).contains(&result.mean_sdc_rate()));
    }

    #[test]
    fn fault_free_record_is_fully_masked() {
        let (q, eval) = setup();
        let campaign = Campaign::new(&q, PlatformConfig::default());
        // Inject value 0 into a multiplier that only ever sees idle lanes?
        // Simpler: target an empty set — selection Fixed with one empty
        // target list means the injector enable is set but no lane selected,
        // so behaviour must be identical to clean.
        let spec = CampaignSpec {
            selection: TargetSelection::Fixed(vec![vec![]]),
            kinds: vec![FaultKind::StuckAtZero],
            eval_images: 6,
            threads: 1,
            verbose: false,
            ..Default::default()
        };
        let result = campaign.run(&spec, &eval).unwrap();
        let r = &result.records[0];
        assert_eq!(r.outcomes.sdc, 0, "no selected lane => fully masked");
        assert_eq!(r.drop_pct, 0.0);
    }

    /// A single-stage width-2 net: channel counts are 3 (stem input), 2
    /// (block convs) and 2 (head input), so multiplier lanes `j >= 3` are
    /// idle in every MAC op — the fixture for provable-masking tests.
    fn narrow_setup() -> (QuantModel, Dataset) {
        let data = SynthCifar::new(SynthCifarConfig {
            train: 16,
            test: 12,
            ..Default::default()
        })
        .generate();
        let net = ResNet::new(2, &[1], 10, 3);
        let deploy = fold_resnet(&net, 32);
        let q = quantize(&deploy, &data.train.images, &QuantConfig::default()).unwrap();
        (q, data.test)
    }

    #[test]
    fn no_op_fault_kinds_are_rejected_up_front() {
        let (q, eval) = setup();
        let campaign = Campaign::new(&q, PlatformConfig::default());
        for kind in [
            FaultKind::StuckBits { fsel: 0, fdata: 5 },
            FaultKind::FlipBits { mask: 0 },
        ] {
            let spec = CampaignSpec {
                kinds: vec![FaultKind::StuckAtZero, kind],
                eval_images: 2,
                ..Default::default()
            };
            match campaign.run(&spec, &eval) {
                Err(PlatformError::Verify(msg)) => {
                    assert!(
                        msg.contains("no-op"),
                        "error must explain the rejection: {msg}"
                    )
                }
                other => panic!("no-op kind {kind:?} must be rejected, got {other:?}"),
            }
        }
    }

    #[test]
    fn provably_masked_items_prune_bit_identically() {
        let (q, eval) = narrow_setup();
        let campaign = Campaign::new(&q, PlatformConfig::default());
        // Lane (0, 5): multiplier 5 is idle in every op of the narrow net
        // and stuck-at-zero cannot perturb a zero-fed idle lane — provably
        // masked. Lane (0, 0) is live — always executed.
        let mk_spec = |verify| CampaignSpec {
            selection: TargetSelection::Fixed(vec![
                vec![MultId::new(0, 5)],
                vec![MultId::new(0, 0)],
            ]),
            kinds: vec![FaultKind::StuckAtZero],
            eval_images: 6,
            verify,
            ..Default::default()
        };
        let pruned = campaign.run(&mk_spec(VerifyMode::Warn), &eval).unwrap();
        let full = campaign.run(&mk_spec(VerifyMode::Off), &eval).unwrap();
        assert_eq!(pruned.masked_static, 1, "the idle-lane item is pruned");
        assert_eq!(full.masked_static, 0, "verify off disables pruning");
        assert_eq!(
            pruned.records, full.records,
            "pruning must be bit-identical to emulating the masked item"
        );
        assert_eq!(pruned.baseline_accuracy, full.baseline_accuracy);
        // Only the executed items count inferences: baseline + 1 vs. + 2.
        assert_eq!(pruned.total_inferences, 2 * 6);
        assert_eq!(full.total_inferences, 3 * 6);
        // The same fault with a nonzero override perturbs the zero-fed idle
        // lane, so it must NOT be pruned.
        let live_spec = CampaignSpec {
            selection: TargetSelection::Fixed(vec![vec![MultId::new(0, 5)]]),
            kinds: vec![FaultKind::Constant(1)],
            eval_images: 6,
            ..Default::default()
        };
        let live = campaign.run(&live_spec, &eval).unwrap();
        assert_eq!(live.masked_static, 0);
    }

    #[test]
    fn campaign_is_batch_size_invariant() {
        // The mini-batch wired through PlatformConfig.accel.batch is purely
        // a host-side throughput knob: records must be bit-identical.
        let (q, eval) = setup();
        let spec = CampaignSpec {
            selection: TargetSelection::RandomSubsets {
                k: 2,
                trials: 3,
                seed: 11,
            },
            kinds: vec![FaultKind::StuckAtZero, FaultKind::Constant(1)],
            eval_images: 7,
            threads: 1,
            verbose: false,
            ..Default::default()
        };
        let run_with_batch = |batch: usize| {
            let mut config = PlatformConfig::default();
            config.accel.batch = batch;
            Campaign::new(&q, config).run(&spec, &eval).unwrap()
        };
        let a = run_with_batch(1);
        let b = run_with_batch(4);
        let c = run_with_batch(64);
        assert_eq!(a.baseline_accuracy, b.baseline_accuracy);
        assert_eq!(a.records, b.records);
        assert_eq!(a.records, c.records);
    }

    #[test]
    fn threaded_campaign_matches_single_threaded() {
        let (q, eval) = setup();
        let campaign = Campaign::new(&q, PlatformConfig::default());
        let mk_spec = |threads| CampaignSpec {
            selection: TargetSelection::RandomSubsets {
                k: 2,
                trials: 3,
                seed: 5,
            },
            kinds: vec![FaultKind::StuckAtZero],
            eval_images: 6,
            threads,
            verbose: false,
            ..Default::default()
        };
        let a = campaign.run(&mk_spec(1), &eval).unwrap();
        let b = campaign.run(&mk_spec(4), &eval).unwrap();
        assert_eq!(a.baseline_accuracy, b.baseline_accuracy);
        assert_eq!(
            a.records, b.records,
            "record order and values must be deterministic"
        );
    }
}
