//! Train-once caching of the quantized network used by the experiments.
//!
//! The paper uses a pre-trained ResNet-18 from the Tengine model zoo; this
//! workspace trains its own slim ResNet-18 on SynthCIFAR (see
//! `nvfi-dataset`) and caches the folded float model on disk so every
//! experiment binary and bench reuses the same network.

use std::path::{Path, PathBuf};

use nvfi_dataset::{SynthCifar, SynthCifarConfig, TrainTest};
use nvfi_nn::fold::fold_resnet;
use nvfi_nn::resnet::ResNet;
use nvfi_nn::train::{TrainConfig, Trainer};
use nvfi_nn::{artifact, DeployModel};
use nvfi_obs::progress;
use nvfi_quant::{quantize, QuantConfig, QuantModel};

/// What to train / where to cache.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelSpec {
    /// ResNet base width (64 = paper scale, 8 = fast slim default).
    pub width: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Training set size.
    pub train: usize,
    /// Test set size.
    pub test: usize,
    /// SynthCIFAR pixel-noise level.
    pub noise: f32,
    /// SynthCIFAR label-noise fraction (see
    /// [`nvfi_dataset::SynthCifarConfig::label_noise`]).
    pub label_noise: f32,
    /// Seed for dataset + init + shuffling.
    pub seed: u64,
    /// Cache directory.
    pub artifact_dir: PathBuf,
    /// Print training progress.
    pub verbose: bool,
}

impl Default for ModelSpec {
    fn default() -> Self {
        ModelSpec {
            width: 8,
            epochs: 5,
            train: 3000,
            test: 600,
            noise: 0.8,
            // 27% corrupted labels bound test accuracy at ~75.7% — pinning
            // the experiments at the paper's 75.5% operating point (pixel
            // noise alone cannot: a CNN averages it away).
            label_noise: 0.27,
            seed: 7,
            artifact_dir: PathBuf::from("artifacts"),
            verbose: false,
        }
    }
}

impl ModelSpec {
    /// The cache file this spec maps to.
    #[must_use]
    pub fn artifact_path(&self) -> PathBuf {
        self.artifact_dir.join(format!(
            "resnet18-w{}-e{}-t{}-n{}-l{}-s{}.nvfi",
            self.width,
            self.epochs,
            self.train,
            (self.noise * 1000.0) as u32,
            (self.label_noise * 1000.0) as u32,
            self.seed
        ))
    }

    /// The dataset this spec generates.
    #[must_use]
    pub fn dataset(&self) -> TrainTest {
        SynthCifar::new(SynthCifarConfig {
            train: self.train,
            test: self.test,
            seed: self.seed,
            noise: self.noise,
            label_noise: self.label_noise,
            ..Default::default()
        })
        .generate()
    }
}

/// Loads the cached folded model, or trains + folds + caches it.
/// Returns the deploy model and the dataset it was trained on.
#[must_use]
pub fn get_or_train(spec: &ModelSpec) -> (DeployModel, TrainTest) {
    let data = spec.dataset();
    let path = spec.artifact_path();
    if let Ok(model) = artifact::load_file(&path) {
        if spec.verbose {
            progress::note(format!("loaded cached model {}", path.display()));
        }
        return (model, data);
    }
    if spec.verbose {
        progress::note(format!(
            "training ResNet-18 (width {}) on SynthCIFAR ({} images, {} epochs)...",
            spec.width, spec.train, spec.epochs
        ));
    }
    let mut net = ResNet::resnet18(spec.width, 10, spec.seed);
    let cfg = TrainConfig {
        epochs: spec.epochs,
        seed: spec.seed,
        verbose: spec.verbose,
        ..Default::default()
    };
    let stats = Trainer::new(cfg).fit(&mut net, &data.train, &data.test);
    if spec.verbose {
        progress::note(format!(
            "float test accuracy: {:.1}%",
            100.0 * stats.final_test_acc()
        ));
    }
    let deploy = fold_resnet(&net, 32);
    save_quietly(&deploy, &path);
    (deploy, data)
}

/// [`get_or_train`] followed by int8 quantization (calibrating on the first
/// 64 training images). Returns the quantized model, the dataset, and the
/// int8 test accuracy.
#[must_use]
pub fn get_or_train_quantized(spec: &ModelSpec) -> (QuantModel, TrainTest, f64) {
    let (deploy, data) = get_or_train(spec);
    let calib = data.train.take(64);
    let q =
        quantize(&deploy, &calib.images, &QuantConfig::default()).expect("trained model quantizes");
    let acc = q.accuracy(&data.test.images, &data.test.labels, 1);
    (q, data, acc)
}

fn save_quietly(model: &DeployModel, path: &Path) {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = artifact::save_file(model, path) {
        progress::note(format!(
            "warning: could not cache model at {}: {e}",
            path.display()
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(dir: &str) -> ModelSpec {
        ModelSpec {
            width: 4,
            epochs: 1,
            train: 40,
            test: 20,
            artifact_dir: std::env::temp_dir().join(dir),
            ..Default::default()
        }
    }

    #[test]
    fn trains_then_loads_from_cache() {
        let spec = tiny_spec("nvfi_artifacts_a");
        let _ = std::fs::remove_file(spec.artifact_path());
        let (m1, _) = get_or_train(&spec);
        assert!(spec.artifact_path().exists(), "artifact should be cached");
        let (m2, _) = get_or_train(&spec);
        assert_eq!(m1.ops.len(), m2.ops.len());
    }

    #[test]
    fn quantized_pipeline_reports_accuracy() {
        let spec = tiny_spec("nvfi_artifacts_b");
        let (q, data, acc) = get_or_train_quantized(&spec);
        assert!((0.0..=1.0).contains(&acc));
        assert_eq!(q.input_shape.c, 3);
        assert_eq!(data.test.len(), 20);
    }

    #[test]
    fn distinct_specs_have_distinct_paths() {
        let a = tiny_spec("nvfi_artifacts_c");
        let mut b = a.clone();
        b.width = 8;
        assert_ne!(a.artifact_path(), b.artifact_path());
    }
}
