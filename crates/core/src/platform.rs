//! The assembled emulation platform.

use std::fmt;

use nvfi_accel::{AccelConfig, AccelError, Accelerator, FaultConfig, InferenceResult};
use nvfi_compiler::{CompileError, ExecutionPlan};
use nvfi_quant::QuantModel;
use nvfi_tensor::Tensor;

/// Configuration of the assembled platform (the accelerator config plus
/// room for platform-level knobs).
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct PlatformConfig {
    /// The emulated device configuration.
    pub accel: AccelConfig,
    /// Shard granularity of a [`crate::pool::DevicePool`]: the minimum
    /// number of images per device shard when one evaluation batch is split
    /// across pool members. `0` (the default) means one fast-path mini-batch
    /// ([`AccelConfig::batch`]), so a shard never truncates a mini-batch.
    /// Purely a scheduling knob — merged predictions are bit-identical for
    /// every value.
    pub shard_images: usize,
}

/// Errors from platform assembly or operation.
#[derive(Debug)]
pub enum PlatformError {
    /// Lowering the model failed.
    Compile(CompileError),
    /// The device rejected the plan or an operation.
    Accel(AccelError),
    /// Static verification rejected the plan or the campaign's fault
    /// programs (strict verify mode, or a provable no-op fault kind).
    Verify(String),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::Compile(e) => write!(f, "platform compile error: {e}"),
            PlatformError::Accel(e) => write!(f, "platform device error: {e}"),
            PlatformError::Verify(msg) => write!(f, "platform verification error: {msg}"),
        }
    }
}

impl std::error::Error for PlatformError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlatformError::Compile(e) => Some(e),
            PlatformError::Accel(e) => Some(e),
            PlatformError::Verify(_) => None,
        }
    }
}

impl From<CompileError> for PlatformError {
    fn from(e: CompileError) -> Self {
        PlatformError::Compile(e)
    }
}

impl From<AccelError> for PlatformError {
    fn from(e: AccelError) -> Self {
        PlatformError::Accel(e)
    }
}

/// A ready-to-run emulation platform: compiled plan + programmed device.
#[derive(Clone, Debug)]
pub struct EmulationPlatform {
    config: PlatformConfig,
    plan: ExecutionPlan,
    accel: Accelerator,
}

impl EmulationPlatform {
    /// Compiles `model` and loads it onto a fresh device.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError`] if lowering fails or the plan does not fit
    /// the device.
    pub fn assemble(model: &QuantModel, config: PlatformConfig) -> Result<Self, PlatformError> {
        let plan = nvfi_compiler::compile(model, config.accel.dram_capacity)?;
        let mut accel = Accelerator::new(config.accel);
        accel.load_plan(&plan)?;
        Ok(EmulationPlatform {
            config,
            plan,
            accel,
        })
    }

    /// Assembles a platform from an **already compiled** plan: loads it onto
    /// a fresh device without needing the quantized model. This is how a
    /// remote `nvfi-dist` worker programs its device from the wire — the
    /// coordinator compiles once and ships the plan words plus the DRAM
    /// weight image; the worker decodes and calls this. The plan's
    /// [`nvfi_compiler::ExecutionPlan::weight_image`] is preloaded as usual
    /// (it may be empty when weights arrive separately via
    /// [`nvfi_accel::Accelerator::import_weight_image`]).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError`] if the plan does not fit the device.
    pub fn from_plan(plan: ExecutionPlan, config: PlatformConfig) -> Result<Self, PlatformError> {
        let mut accel = Accelerator::new(config.accel);
        accel.load_plan(&plan)?;
        Ok(EmulationPlatform {
            config,
            plan,
            accel,
        })
    }

    /// The platform configuration.
    #[must_use]
    pub fn config(&self) -> PlatformConfig {
        self.config
    }

    /// The compiled execution plan.
    #[must_use]
    pub fn plan(&self) -> &ExecutionPlan {
        &self.plan
    }

    /// Mutable access to the device (register pokes, DMA, fault windows).
    pub fn accel_mut(&mut self) -> &mut Accelerator {
        &mut self.accel
    }

    /// Shared access to the device.
    #[must_use]
    pub fn accel(&self) -> &Accelerator {
        &self.accel
    }

    /// Programs a fault configuration.
    pub fn inject(&mut self, fault: &FaultConfig) {
        self.accel.inject(fault);
    }

    /// Disables fault injection.
    pub fn clear_faults(&mut self) {
        self.accel.clear_faults();
    }

    /// Runs one f32 image.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn run(&mut self, image: &Tensor<f32>) -> Result<InferenceResult, PlatformError> {
        Ok(self.accel.run_inference(image)?)
    }

    /// Classifies a batch of f32 images (one quantization pass, then the
    /// borrowed-i8 path — see [`EmulationPlatform::classify_i8`]).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn classify(&mut self, images: &Tensor<f32>) -> Result<Vec<u8>, PlatformError> {
        Ok(self.accel.classify_batch(images)?)
    }

    /// Classifies a batch of pre-quantized i8 images borrowed as dense,
    /// back-to-back CHW slices — the zero-copy path a
    /// [`crate::pool::DevicePool`] drives with sub-views of a
    /// campaign-lifetime [`crate::pool::QuantizedEvalSet`].
    ///
    /// # Errors
    ///
    /// Propagates device errors (including a batch length that is not a
    /// whole number of plan input images).
    pub fn classify_i8(&mut self, images: &[i8]) -> Result<Vec<u8>, PlatformError> {
        Ok(self.accel.classify_batch_i8(images)?)
    }

    /// Top-1 accuracy on a labelled set.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != images.shape().n`.
    pub fn accuracy(&mut self, images: &Tensor<f32>, labels: &[u8]) -> Result<f64, PlatformError> {
        Ok(self.accel.accuracy(images, labels)?)
    }

    /// Modelled single-inference latency in milliseconds (187.5 MHz cycle
    /// model by default).
    #[must_use]
    pub fn modeled_latency_ms(&self) -> f64 {
        nvfi_accel::perf::plan_report(&self.plan, self.config.accel.clock_hz).latency_ms()
    }

    /// Modelled inference throughput (1 / latency).
    #[must_use]
    pub fn modeled_inferences_per_second(&self) -> f64 {
        nvfi_accel::perf::plan_report(&self.plan, self.config.accel.clock_hz)
            .inferences_per_second()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvfi_accel::FaultKind;
    use nvfi_compiler::regmap::MultId;
    use nvfi_dataset::{SynthCifar, SynthCifarConfig};
    use nvfi_nn::fold::fold_resnet;
    use nvfi_nn::resnet::ResNet;
    use nvfi_quant::{quantize, QuantConfig};

    fn setup() -> (QuantModel, nvfi_dataset::TrainTest) {
        let data = SynthCifar::new(SynthCifarConfig {
            train: 16,
            test: 8,
            ..Default::default()
        })
        .generate();
        let net = ResNet::new(4, &[1, 1], 10, 3);
        let deploy = fold_resnet(&net, 32);
        (
            quantize(&deploy, &data.train.images, &QuantConfig::default()).unwrap(),
            data,
        )
    }

    #[test]
    fn assemble_and_run() {
        let (q, data) = setup();
        let mut p = EmulationPlatform::assemble(&q, PlatformConfig::default()).unwrap();
        let r = p.run(&data.test.images.slice_image(0)).unwrap();
        assert_eq!(r.logits.len(), 10);
        assert!(p.modeled_latency_ms() > 0.0);
        assert!(p.modeled_inferences_per_second() > 0.0);
    }

    #[test]
    fn platform_matches_cpu_reference() {
        let (q, data) = setup();
        let mut p = EmulationPlatform::assemble(&q, PlatformConfig::default()).unwrap();
        let want = q.classify(&data.test.images, 1);
        let got = p.classify(&data.test.images).unwrap();
        assert_eq!(want, got);
    }

    #[test]
    fn from_plan_matches_model_assembly() {
        let (q, data) = setup();
        let mut compiled = EmulationPlatform::assemble(&q, PlatformConfig::default()).unwrap();
        // Ship the plan words + weight image the way a dist worker receives
        // them: the command-stream encoding (weight_image excluded) plus the
        // exported DRAM regions.
        let words = nvfi_compiler::plan::encode_words(compiled.plan());
        let image = compiled.accel_mut().export_weight_image().unwrap();
        let decoded = nvfi_compiler::plan::decode_words(&words).unwrap();
        let mut shipped = EmulationPlatform::from_plan(decoded, PlatformConfig::default()).unwrap();
        shipped.accel_mut().import_weight_image(&image).unwrap();
        assert_eq!(
            compiled.classify(&data.test.images).unwrap(),
            shipped.classify(&data.test.images).unwrap(),
            "a plan-programmed device must match the model-compiled one"
        );
    }

    #[test]
    fn inject_and_clear() {
        let (q, data) = setup();
        let mut p = EmulationPlatform::assemble(&q, PlatformConfig::default()).unwrap();
        let img = data.test.images.slice_image(0);
        let clean = p.run(&img).unwrap().logits;
        p.inject(&FaultConfig::new(
            MultId::all().collect(),
            FaultKind::Constant(131071),
        ));
        let faulted = p.run(&img).unwrap().logits;
        assert_ne!(clean, faulted);
        p.clear_faults();
        assert_eq!(p.run(&img).unwrap().logits, clean);
    }
}
