//! Batch-norm folding: turns a trained [`crate::resnet::ResNet`]
//! into an inference-only [`DeployModel`] of convolutions with biases —
//! the form the quantizer and the accelerator compiler consume.
//!
//! Folding uses the running statistics: for channel `k`,
//! `w' = w * gamma / sqrt(var + eps)` and
//! `b' = beta - mean * gamma / sqrt(var + eps)`.

use nvfi_tensor::{Mat, Shape4, Tensor};

use crate::deploy::{DeployModel, DeployOp, DeployOpKind, ValueId};
use crate::layers::{BatchNorm2d, Conv2d};
use crate::resnet::ResNet;

/// Folds a batch norm into the preceding (bias-free) convolution, returning
/// the fused weight tensor and bias vector.
///
/// # Panics
///
/// Panics if channel counts disagree.
#[must_use]
pub fn fold_conv_bn(conv: &Conv2d, bn: &BatchNorm2d) -> (Tensor<f32>, Vec<f32>) {
    assert_eq!(conv.out_c, bn.c, "conv/bn channel mismatch");
    let mut weight = conv.weight_tensor();
    let per_k = conv.in_c * conv.k * conv.k;
    let mut bias = vec![0f32; conv.out_c];
    for k in 0..conv.out_c {
        let inv_std = 1.0 / (bn.running_var[k] + bn.eps).sqrt();
        let scale = bn.gamma.data[k] * inv_std;
        for v in &mut weight.as_mut_slice()[k * per_k..(k + 1) * per_k] {
            *v *= scale;
        }
        let conv_bias = conv.bias.as_ref().map_or(0.0, |b| b.data[k]);
        bias[k] = bn.beta.data[k] + (conv_bias - bn.running_mean[k]) * scale;
    }
    (weight, bias)
}

/// Folds a full ResNet into a [`DeployModel`].
///
/// Residual adds are fused into the second convolution of each basic block
/// (`fuse_add`), matching the SDP elementwise path of the accelerator.
#[must_use]
pub fn fold_resnet(net: &ResNet, input_hw: usize) -> DeployModel {
    let mut ops: Vec<DeployOp> = Vec::new();
    let push = |op: DeployOp, ops: &mut Vec<DeployOp>| -> ValueId {
        ops.push(op);
        ops.len() // value produced by this op
    };

    // Stem.
    let (w, b) = fold_conv_bn(&net.stem, &net.stem_bn);
    let mut cur: ValueId = push(
        DeployOp {
            input: 0,
            kind: DeployOpKind::Conv {
                weight: w,
                bias: b,
                stride: net.stem.stride,
                pad: net.stem.pad,
                relu: true,
                fuse_add: None,
            },
        },
        &mut ops,
    );

    for block in &net.blocks {
        let block_input = cur;
        // Shortcut (downsample or identity).
        let shortcut: ValueId = match &block.down {
            Some((conv, bn)) => {
                let (w, b) = fold_conv_bn(conv, bn);
                push(
                    DeployOp {
                        input: block_input,
                        kind: DeployOpKind::Conv {
                            weight: w,
                            bias: b,
                            stride: conv.stride,
                            pad: conv.pad,
                            relu: false,
                            fuse_add: None,
                        },
                    },
                    &mut ops,
                )
            }
            None => block_input,
        };
        // Main path conv1 (+relu).
        let (w1, b1) = fold_conv_bn(&block.conv1, &block.bn1);
        let v1 = push(
            DeployOp {
                input: block_input,
                kind: DeployOpKind::Conv {
                    weight: w1,
                    bias: b1,
                    stride: block.conv1.stride,
                    pad: block.conv1.pad,
                    relu: true,
                    fuse_add: None,
                },
            },
            &mut ops,
        );
        // Main path conv2 with fused residual add and post-add relu.
        let (w2, b2) = fold_conv_bn(&block.conv2, &block.bn2);
        cur = push(
            DeployOp {
                input: v1,
                kind: DeployOpKind::Conv {
                    weight: w2,
                    bias: b2,
                    stride: block.conv2.stride,
                    pad: block.conv2.pad,
                    relu: true,
                    fuse_add: Some(shortcut),
                },
            },
            &mut ops,
        );
    }

    // Head.
    cur = push(
        DeployOp {
            input: cur,
            kind: DeployOpKind::GlobalAvgPool,
        },
        &mut ops,
    );
    let wmat = Mat::from_vec(net.fc.out_f, net.fc.in_f, net.fc.weight.data.clone());
    let out = push(
        DeployOp {
            input: cur,
            kind: DeployOpKind::Linear {
                weight: wmat,
                bias: net.fc.bias.data.clone(),
            },
        },
        &mut ops,
    );

    DeployModel {
        input_shape: Shape4::new(1, 3, input_hw, input_hw),
        ops,
        output: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Layer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn folded_conv_bn_matches_eval_forward() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, false, &mut rng);
        let mut bn = BatchNorm2d::new(3);
        // Give batch norm non-trivial statistics and affine parameters.
        bn.running_mean = vec![0.3, -0.2, 0.1];
        bn.running_var = vec![0.9, 1.5, 0.4];
        bn.gamma.data = vec![1.2, 0.7, -0.5];
        bn.beta.data = vec![0.1, -0.3, 0.2];
        let x = Tensor::from_fn(Shape4::new(2, 2, 5, 5), |n, c, h, w| {
            ((n * 31 + c * 17 + h * 5 + w) % 11) as f32 * 0.1 - 0.4
        });
        let want = bn.forward(&conv.forward(&x, false), false);

        let (wf, bf) = fold_conv_bn(&conv, &bn);
        let model = DeployModel {
            input_shape: Shape4::new(1, 2, 5, 5),
            ops: vec![DeployOp {
                input: 0,
                kind: DeployOpKind::Conv {
                    weight: wf,
                    bias: bf,
                    stride: 1,
                    pad: 1,
                    relu: false,
                    fuse_add: None,
                },
            }],
            output: 1,
        };
        let got = model.forward(&x);
        for (a, b) in want.as_slice().iter().zip(got.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn folded_resnet_matches_eval_forward() {
        let mut net = ResNet::new(4, &[1, 1], 10, 5);
        // Perturb running stats so folding is non-trivial.
        net.stem_bn
            .running_mean
            .iter_mut()
            .enumerate()
            .for_each(|(i, v)| *v = i as f32 * 0.05);
        net.stem_bn
            .running_var
            .iter_mut()
            .enumerate()
            .for_each(|(i, v)| *v = 1.0 + i as f32 * 0.1);
        let x = Tensor::from_fn(Shape4::new(2, 3, 16, 16), |n, c, h, w| {
            ((n * 7 + c * 3 + h + w) % 13) as f32 * 0.1 - 0.6
        });
        let want = net.forward(&x, false);
        let model = fold_resnet(&net, 16);
        let got = model.forward(&x);
        assert_eq!(want.shape(), got.shape());
        for (a, b) in want.as_slice().iter().zip(got.as_slice()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn folded_resnet18_op_count() {
        let net = ResNet::resnet18(4, 10, 0);
        let model = fold_resnet(&net, 32);
        // stem + 8 blocks * (2 convs (+1 downsample in 3 stages)) + pool + fc
        // = 1 + 16 + 3 + 2 = 22 ops.
        assert_eq!(model.ops.len(), 22);
        let shapes = model.value_shapes();
        assert_eq!(shapes[model.output], Shape4::new(1, 10, 1, 1));
    }
}
