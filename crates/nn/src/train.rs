//! Training loop: SGD with cosine decay over a labelled dataset.

use nvfi_dataset::Dataset;

use crate::layers::Layer;
use crate::loss;
use crate::optim::Sgd;
use crate::resnet::ResNet;

/// Trainer configuration.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Base learning rate (cosine-decayed to 0).
    pub lr: f32,
    /// Momentum.
    pub momentum: f32,
    /// Weight decay.
    pub weight_decay: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Print one line per epoch to stderr.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 6,
            batch: 32,
            lr: 0.08,
            momentum: 0.9,
            weight_decay: 5e-4,
            seed: 0x7EA1,
            verbose: false,
        }
    }
}

/// Per-epoch statistics.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct EpochStats {
    /// Mean training loss.
    pub loss: f32,
    /// Training accuracy.
    pub train_acc: f64,
    /// Held-out accuracy (0 if no test set given).
    pub test_acc: f64,
    /// Learning rate at the end of the epoch.
    pub lr: f32,
}

/// The full training record.
#[derive(Clone, Debug, Default)]
pub struct TrainStats {
    /// One entry per epoch.
    pub epochs: Vec<EpochStats>,
}

impl TrainStats {
    /// Final test accuracy (0 if never evaluated).
    #[must_use]
    pub fn final_test_acc(&self) -> f64 {
        self.epochs.last().map_or(0.0, |e| e.test_acc)
    }
}

/// Drives SGD over a [`ResNet`].
#[derive(Copy, Clone, Debug)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    #[must_use]
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    /// Trains `net` on `train`, evaluating on `test` after each epoch.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty or `batch == 0`.
    pub fn fit(&self, net: &mut ResNet, train: &Dataset, test: &Dataset) -> TrainStats {
        let cfg = self.config;
        assert!(!train.is_empty(), "empty training set");
        assert!(cfg.batch > 0, "batch size must be positive");
        let batches_per_epoch = train.len().div_ceil(cfg.batch);
        let total_steps = batches_per_epoch * cfg.epochs;
        let mut stats = TrainStats::default();
        let mut step = 0usize;
        for epoch in 0..cfg.epochs {
            let order = train.shuffled_indices(cfg.seed.wrapping_add(epoch as u64));
            let mut epoch_loss = 0f64;
            let mut correct = 0usize;
            for chunk in order.chunks(cfg.batch) {
                let batch = train.gather(chunk);
                let logits = net.forward(&batch.images, true);
                let (l, dlogits) = loss::softmax_cross_entropy(&logits, &batch.labels);
                epoch_loss += f64::from(l) * chunk.len() as f64;
                let preds = loss::predictions(&logits);
                correct += preds
                    .iter()
                    .zip(&batch.labels)
                    .filter(|(p, y)| p == y)
                    .count();
                net.backward(&dlogits);
                let lr = Sgd::cosine_lr(cfg.lr, step, total_steps);
                let opt = Sgd {
                    lr,
                    momentum: cfg.momentum,
                    weight_decay: cfg.weight_decay,
                };
                opt.step(net);
                step += 1;
            }
            let train_acc = correct as f64 / train.len() as f64;
            let test_acc = if test.is_empty() {
                0.0
            } else {
                evaluate(net, test, cfg.batch.max(16))
            };
            let e = EpochStats {
                loss: (epoch_loss / train.len() as f64) as f32,
                train_acc,
                test_acc,
                lr: Sgd::cosine_lr(cfg.lr, step, total_steps),
            };
            if cfg.verbose {
                eprintln!(
                    "epoch {:>2}: loss {:.4}  train {:.1}%  test {:.1}%",
                    epoch + 1,
                    e.loss,
                    100.0 * e.train_acc,
                    100.0 * e.test_acc
                );
            }
            stats.epochs.push(e);
        }
        stats
    }
}

/// Top-1 accuracy of the float network on a dataset (evaluation mode).
#[must_use]
pub fn evaluate(net: &mut ResNet, data: &Dataset, batch: usize) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let idx: Vec<usize> = (0..data.len()).collect();
    let mut correct = 0usize;
    for chunk in idx.chunks(batch.max(1)) {
        let b = data.gather(chunk);
        let logits = net.forward(&b.images, false);
        let preds = loss::predictions(&logits);
        correct += preds.iter().zip(&b.labels).filter(|(p, y)| p == y).count();
    }
    correct as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvfi_dataset::{SynthCifar, SynthCifarConfig};

    #[test]
    fn overfits_a_tiny_easy_dataset() {
        // Low-noise SynthCIFAR with a small net: training accuracy must rise
        // well above chance within a few epochs.
        let data = SynthCifar::new(SynthCifarConfig {
            train: 80,
            test: 40,
            noise: 0.1,
            ..Default::default()
        })
        .generate();
        let mut net = ResNet::new(4, &[1, 1], 10, 7);
        let cfg = TrainConfig {
            epochs: 15,
            batch: 16,
            lr: 0.05,
            ..Default::default()
        };
        let stats = Trainer::new(cfg).fit(&mut net, &data.train, &data.test);
        assert_eq!(stats.epochs.len(), 15);
        let last = stats.epochs.last().unwrap();
        assert!(
            last.train_acc > 0.7,
            "training accuracy stuck at {:.2} (loss {:.3})",
            last.train_acc,
            last.loss
        );
        // Loss must decrease overall.
        assert!(last.loss < stats.epochs[0].loss);
    }

    #[test]
    fn deterministic_training() {
        let data = SynthCifar::new(SynthCifarConfig {
            train: 32,
            test: 0,
            ..Default::default()
        })
        .generate();
        let cfg = TrainConfig {
            epochs: 1,
            batch: 8,
            ..Default::default()
        };
        let run = || {
            let mut net = ResNet::new(4, &[1], 10, 9);
            Trainer::new(cfg)
                .fit(&mut net, &data.train, &data.test)
                .epochs[0]
                .loss
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_train_rejected() {
        let data = SynthCifar::new(SynthCifarConfig {
            train: 4,
            test: 0,
            ..Default::default()
        })
        .generate();
        let empty = data.train.take(0);
        let mut net = ResNet::new(4, &[1], 10, 0);
        let _ = Trainer::new(TrainConfig::default()).fit(&mut net, &empty, &empty);
    }
}
