//! The inference-only deployment graph produced by batch-norm folding.
//!
//! A [`DeployModel`] is a linear list of ops over *value ids*: value `0` is
//! the network input and op `i` produces value `i + 1`. Residual connections
//! are expressed with [`DeployOpKind::Conv::fuse_add`], which adds a previous
//! value to the convolution output before the activation — exactly the
//! elementwise-add path NVDLA's SDP offers, so the compiler can lower each
//! deploy op onto one accelerator operation.

use nvfi_tensor::{conv, pool, ConvGeom, Mat, Shape4, Tensor};

/// Identifier of an intermediate value: `0` is the model input, op `i`
/// produces value `i + 1`.
pub type ValueId = usize;

/// One inference-time operation.
#[derive(Clone, Debug)]
pub struct DeployOp {
    /// The value consumed as primary input.
    pub input: ValueId,
    /// What the op computes.
    pub kind: DeployOpKind,
}

/// The computation performed by a [`DeployOp`].
#[derive(Clone, Debug)]
pub enum DeployOpKind {
    /// Convolution with folded bias, optional fused residual add and ReLU.
    Conv {
        /// Weights, `(K, C, R, S)`.
        weight: Tensor<f32>,
        /// Bias per output channel (batch-norm folded).
        bias: Vec<f32>,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
        /// Whether a ReLU follows (after any fused add).
        relu: bool,
        /// Optional value added elementwise before the activation.
        fuse_add: Option<ValueId>,
    },
    /// Square-window max pooling.
    MaxPool {
        /// Window size.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Global average pooling to `(N, C, 1, 1)`.
    GlobalAvgPool,
    /// Fully connected classifier head.
    Linear {
        /// Weights, `(out, in)` row-major.
        weight: Mat<f32>,
        /// Bias per output.
        bias: Vec<f32>,
    },
}

/// An inference-only model: ops over value ids with a designated output.
#[derive(Clone, Debug)]
pub struct DeployModel {
    /// Shape of the input with `n == 1`.
    pub input_shape: Shape4,
    /// Ops in execution order (op `i` produces value `i + 1`).
    pub ops: Vec<DeployOp>,
    /// The value holding the logits.
    pub output: ValueId,
}

impl DeployModel {
    /// Computes the shape (with `n == 1`) of every value, index `0` being
    /// the input.
    ///
    /// # Panics
    ///
    /// Panics if an op references a not-yet-produced value or shapes are
    /// inconsistent — a malformed graph.
    #[must_use]
    pub fn value_shapes(&self) -> Vec<Shape4> {
        let mut shapes = vec![self.input_shape.with_n(1)];
        for (i, op) in self.ops.iter().enumerate() {
            assert!(op.input <= i, "op {i} reads future value {}", op.input);
            let in_shape = shapes[op.input];
            let out = match &op.kind {
                DeployOpKind::Conv {
                    weight,
                    stride,
                    pad,
                    fuse_add,
                    ..
                } => {
                    let ws = weight.shape();
                    let geom = ConvGeom::new(in_shape, ws.n, ws.h, ws.w, *stride, *pad);
                    if let Some(a) = fuse_add {
                        assert!(*a <= i, "op {i} fuses future value {a}");
                        assert_eq!(
                            shapes[*a],
                            geom.out_shape(),
                            "fused add shape mismatch at op {i}"
                        );
                    }
                    geom.out_shape()
                }
                DeployOpKind::MaxPool { k, stride } => Shape4::new(
                    1,
                    in_shape.c,
                    (in_shape.h - k) / stride + 1,
                    (in_shape.w - k) / stride + 1,
                ),
                DeployOpKind::GlobalAvgPool => Shape4::new(1, in_shape.c, 1, 1),
                DeployOpKind::Linear { weight, .. } => Shape4::new(1, weight.rows(), 1, 1),
            };
            shapes.push(out);
        }
        shapes
    }

    /// Runs the model in f32 on a batch, returning `(N, classes, 1, 1)`
    /// logits. This is the float reference used for calibration and for
    /// checking quantization quality.
    ///
    /// # Panics
    ///
    /// Panics if `batch`'s per-image shape differs from `input_shape`.
    #[must_use]
    pub fn forward(&self, batch: &Tensor<f32>) -> Tensor<f32> {
        let mut values = self.forward_values(batch);
        values[self.output]
            .take()
            .expect("output value not computed")
    }

    /// Runs the model and returns **every** intermediate value (index 0 is
    /// the input, op `i` produces index `i + 1`). The quantization
    /// calibrator uses this to observe activation ranges.
    ///
    /// # Panics
    ///
    /// Panics if `batch`'s per-image shape differs from `input_shape`.
    #[must_use]
    pub fn forward_values(&self, batch: &Tensor<f32>) -> Vec<Option<Tensor<f32>>> {
        let bs = batch.shape();
        assert_eq!(
            bs.with_n(1),
            self.input_shape.with_n(1),
            "input shape mismatch"
        );
        let mut values: Vec<Option<Tensor<f32>>> = vec![None; self.ops.len() + 1];
        values[0] = Some(batch.clone());
        for (i, op) in self.ops.iter().enumerate() {
            let x = values[op.input].as_ref().expect("value not computed");
            let out = match &op.kind {
                DeployOpKind::Conv {
                    weight,
                    bias,
                    stride,
                    pad,
                    relu,
                    fuse_add,
                } => {
                    let ws = weight.shape();
                    let geom = ConvGeom::new(x.shape().with_n(1), ws.n, ws.h, ws.w, *stride, *pad);
                    let mut y = conv::conv2d_f32(x, weight, &geom);
                    let ys = y.shape();
                    for n in 0..ys.n {
                        for k in 0..ys.c {
                            for h in 0..ys.h {
                                for w in 0..ys.w {
                                    let mut v = y.at(n, k, h, w) + bias[k];
                                    if let Some(a) = fuse_add {
                                        v += values[*a]
                                            .as_ref()
                                            .expect("fused value")
                                            .at(n, k, h, w);
                                    }
                                    if *relu {
                                        v = v.max(0.0);
                                    }
                                    y.set(n, k, h, w, v);
                                }
                            }
                        }
                    }
                    y
                }
                DeployOpKind::MaxPool { k, stride } => pool::maxpool2d(x, *k, *stride),
                DeployOpKind::GlobalAvgPool => pool::global_avg_f32(x),
                DeployOpKind::Linear { weight, bias } => {
                    let xs = x.shape();
                    assert_eq!((xs.h, xs.w), (1, 1), "linear expects pooled input");
                    let mut y = Tensor::zeros(Shape4::new(xs.n, weight.rows(), 1, 1));
                    for n in 0..xs.n {
                        let xi = x.image(n);
                        let yi = y.image_mut(n);
                        for o in 0..weight.rows() {
                            let mut acc = bias[o];
                            for (wv, xv) in weight.row(o).iter().zip(xi) {
                                acc += wv * xv;
                            }
                            yi[o] = acc;
                        }
                    }
                    y
                }
            };
            values[i + 1] = Some(out);
        }
        values
    }

    /// Classifies a batch: argmax over the logits.
    #[must_use]
    pub fn classify(&self, batch: &Tensor<f32>) -> Vec<u8> {
        crate::loss::predictions(&self.forward(batch))
    }

    /// Top-1 accuracy on `(images, labels)` evaluated in chunks.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != images.shape().n`.
    #[must_use]
    pub fn accuracy(&self, images: &Tensor<f32>, labels: &[u8]) -> f64 {
        assert_eq!(images.shape().n, labels.len());
        if labels.is_empty() {
            return 0.0;
        }
        let mut correct = 0usize;
        for n in 0..labels.len() {
            let img = images.slice_image(n);
            let pred = self.classify(&img)[0];
            if pred == labels[n] {
                correct += 1;
            }
        }
        correct as f64 / labels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-op model: 1x1 conv (identity weights) then global pool.
    fn tiny_model() -> DeployModel {
        let weight = Tensor::from_vec(Shape4::new(2, 2, 1, 1), vec![1.0, 0.0, 0.0, 1.0]);
        DeployModel {
            input_shape: Shape4::new(1, 2, 2, 2),
            ops: vec![
                DeployOp {
                    input: 0,
                    kind: DeployOpKind::Conv {
                        weight,
                        bias: vec![0.5, -0.5],
                        stride: 1,
                        pad: 0,
                        relu: true,
                        fuse_add: None,
                    },
                },
                DeployOp {
                    input: 1,
                    kind: DeployOpKind::GlobalAvgPool,
                },
            ],
            output: 2,
        }
    }

    #[test]
    fn identity_conv_with_bias_and_relu() {
        let m = tiny_model();
        let x = Tensor::from_vec(
            Shape4::new(1, 2, 2, 2),
            vec![1.0, -2.0, 3.0, 0.0, -1.0, -1.0, -1.0, -1.0],
        );
        let y = m.forward(&x);
        // Channel 0: relu(x + 0.5) averaged: (1.5 + 0 + 3.5 + 0.5)/4
        assert!((y.at(0, 0, 0, 0) - 5.5 / 4.0).abs() < 1e-6);
        // Channel 1: relu(-1 - 0.5) = 0 everywhere.
        assert_eq!(y.at(0, 1, 0, 0), 0.0);
    }

    #[test]
    fn value_shapes_track_ops() {
        let shapes = tiny_model().value_shapes();
        assert_eq!(shapes[0], Shape4::new(1, 2, 2, 2));
        assert_eq!(shapes[1], Shape4::new(1, 2, 2, 2));
        assert_eq!(shapes[2], Shape4::new(1, 2, 1, 1));
    }

    #[test]
    fn fuse_add_residual() {
        // Conv producing zeros (+ input via fuse_add) == identity with relu.
        let weight = Tensor::from_vec(Shape4::new(1, 1, 1, 1), vec![0.0]);
        let m = DeployModel {
            input_shape: Shape4::new(1, 1, 1, 2),
            ops: vec![DeployOp {
                input: 0,
                kind: DeployOpKind::Conv {
                    weight,
                    bias: vec![0.0],
                    stride: 1,
                    pad: 0,
                    relu: true,
                    fuse_add: Some(0),
                },
            }],
            output: 1,
        };
        let x = Tensor::from_vec(Shape4::new(1, 1, 1, 2), vec![2.0, -3.0]);
        let y = m.forward(&x);
        assert_eq!(y.as_slice(), &[2.0, 0.0]);
    }

    #[test]
    fn accuracy_on_trivial_classifier() {
        let m = tiny_model();
        // Class decided by which channel has larger mean. Build inputs
        // accordingly; labels in {0, 1}.
        let mut images = Tensor::zeros(Shape4::new(2, 2, 2, 2));
        images.image_mut(0)[..4].fill(5.0); // channel 0 hot -> class 0
        images.image_mut(1)[4..].fill(5.0); // channel 1 hot -> class 1
        let acc = m.accuracy(&images, &[0, 1]);
        assert_eq!(acc, 1.0);
    }
}
