//! Width-configurable ResNet-18 (CIFAR variant).
//!
//! Topology: 3x3 stem (no max-pool, CIFAR images are only 32x32), four
//! stages of two basic blocks each with widths `[w, 2w, 4w, 8w]`, strides
//! `[1, 2, 2, 2]`, global average pooling and a linear classifier — the same
//! graph as the paper's "small ResNet-18", with `w` trading accuracy for
//! train/simulation time.

use nvfi_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::layers::{BatchNorm2d, Conv2d, GlobalAvgPool, Layer, Linear, Param, ReLU};

/// A residual basic block: `relu(bn2(conv2(relu(bn1(conv1 x)))) + shortcut(x))`.
#[derive(Clone, Debug)]
pub struct BasicBlock {
    /// First 3x3 convolution (possibly strided).
    pub conv1: Conv2d,
    /// Batch norm after `conv1`.
    pub bn1: BatchNorm2d,
    relu1: ReLU,
    /// Second 3x3 convolution.
    pub conv2: Conv2d,
    /// Batch norm after `conv2`.
    pub bn2: BatchNorm2d,
    /// Optional 1x1 strided projection shortcut.
    pub down: Option<(Conv2d, BatchNorm2d)>,
    relu_out: ReLU,
}

impl BasicBlock {
    /// Creates a block mapping `in_c -> out_c` with the given stride.
    #[must_use]
    pub fn new(in_c: usize, out_c: usize, stride: usize, rng: &mut StdRng) -> Self {
        let down = (stride != 1 || in_c != out_c).then(|| {
            (
                Conv2d::new(in_c, out_c, 1, stride, 0, false, rng),
                BatchNorm2d::new(out_c),
            )
        });
        BasicBlock {
            conv1: Conv2d::new(in_c, out_c, 3, stride, 1, false, rng),
            bn1: BatchNorm2d::new(out_c),
            relu1: ReLU::new(),
            conv2: Conv2d::new(out_c, out_c, 3, 1, 1, false, rng),
            bn2: BatchNorm2d::new(out_c),
            down,
            relu_out: ReLU::new(),
        }
    }
}

impl Layer for BasicBlock {
    fn forward(&mut self, x: &Tensor<f32>, train: bool) -> Tensor<f32> {
        let mut y = self.conv1.forward(x, train);
        y = self.bn1.forward(&y, train);
        y = self.relu1.forward(&y, train);
        y = self.conv2.forward(&y, train);
        y = self.bn2.forward(&y, train);
        let shortcut = match &mut self.down {
            Some((conv, bn)) => {
                let s = conv.forward(x, train);
                bn.forward(&s, train)
            }
            None => x.clone(),
        };
        let mut sum = y;
        for (a, b) in sum.as_mut_slice().iter_mut().zip(shortcut.as_slice()) {
            *a += b;
        }
        self.relu_out.forward(&sum, train)
    }

    fn backward(&mut self, dy: &Tensor<f32>) -> Tensor<f32> {
        let dsum = self.relu_out.backward(dy);
        // Main path.
        let mut d = self.bn2.backward(&dsum);
        d = self.conv2.backward(&d);
        d = self.relu1.backward(&d);
        d = self.bn1.backward(&d);
        let mut dx = self.conv1.backward(&d);
        // Shortcut path.
        let dshort = match &mut self.down {
            Some((conv, bn)) => {
                let d = bn.backward(&dsum);
                conv.backward(&d)
            }
            None => dsum,
        };
        for (a, b) in dx.as_mut_slice().iter_mut().zip(dshort.as_slice()) {
            *a += b;
        }
        dx
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.for_each_param(f);
        self.bn1.for_each_param(f);
        self.conv2.for_each_param(f);
        self.bn2.for_each_param(f);
        if let Some((conv, bn)) = &mut self.down {
            conv.for_each_param(f);
            bn.for_each_param(f);
        }
    }
}

/// A CIFAR-style residual network.
#[derive(Clone, Debug)]
pub struct ResNet {
    /// 3x3 stem convolution.
    pub stem: Conv2d,
    /// Stem batch norm.
    pub stem_bn: BatchNorm2d,
    stem_relu: ReLU,
    /// Residual stages in order.
    pub blocks: Vec<BasicBlock>,
    pool: GlobalAvgPool,
    /// Final classifier.
    pub fc: Linear,
    /// Base width `w` this network was built with.
    pub width: usize,
}

impl ResNet {
    /// Builds a ResNet-18 with base width `width` (the paper-scale network
    /// uses 64; slim variants train quickly), `classes` outputs and a
    /// deterministic parameter seed.
    #[must_use]
    pub fn resnet18(width: usize, classes: usize, seed: u64) -> Self {
        Self::new(width, &[2, 2, 2, 2], classes, seed)
    }

    /// Builds a residual network with `stage_blocks[i]` basic blocks in
    /// stage `i`; widths double each stage starting from `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`, `classes == 0` or `stage_blocks` is empty.
    #[must_use]
    pub fn new(width: usize, stage_blocks: &[usize], classes: usize, seed: u64) -> Self {
        assert!(
            width > 0 && classes > 0 && !stage_blocks.is_empty(),
            "bad resnet config"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let stem = Conv2d::new(3, width, 3, 1, 1, false, &mut rng);
        let stem_bn = BatchNorm2d::new(width);
        let mut blocks = Vec::new();
        let mut in_c = width;
        for (stage, &nblocks) in stage_blocks.iter().enumerate() {
            let out_c = width << stage;
            for b in 0..nblocks {
                let stride = if stage > 0 && b == 0 { 2 } else { 1 };
                blocks.push(BasicBlock::new(in_c, out_c, stride, &mut rng));
                in_c = out_c;
            }
        }
        let fc = Linear::new(in_c, classes, &mut rng);
        ResNet {
            stem,
            stem_bn,
            stem_relu: ReLU::new(),
            blocks,
            pool: GlobalAvgPool::new(),
            fc,
            width,
        }
    }

    /// Total number of learnable scalars.
    #[must_use]
    pub fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.for_each_param(&mut |p| n += p.len());
        n
    }

    /// Clears all parameter gradients.
    pub fn zero_grad(&mut self) {
        self.for_each_param(&mut |p| p.zero_grad());
    }
}

impl Layer for ResNet {
    fn forward(&mut self, x: &Tensor<f32>, train: bool) -> Tensor<f32> {
        let mut y = self.stem.forward(x, train);
        y = self.stem_bn.forward(&y, train);
        y = self.stem_relu.forward(&y, train);
        for b in &mut self.blocks {
            y = b.forward(&y, train);
        }
        let y = self.pool.forward(&y, train);
        self.fc.forward(&y, train)
    }

    fn backward(&mut self, dy: &Tensor<f32>) -> Tensor<f32> {
        let mut d = self.fc.backward(dy);
        d = self.pool.backward(&d);
        for b in self.blocks.iter_mut().rev() {
            d = b.backward(&d);
        }
        d = self.stem_relu.backward(&d);
        d = self.stem_bn.backward(&d);
        self.stem.backward(&d)
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.stem.for_each_param(f);
        self.stem_bn.for_each_param(f);
        for b in &mut self.blocks {
            b.for_each_param(f);
        }
        self.fc.for_each_param(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvfi_tensor::Shape4;

    #[test]
    fn resnet18_has_expected_structure() {
        let mut net = ResNet::resnet18(8, 10, 0);
        assert_eq!(net.blocks.len(), 8);
        assert!(net.blocks[0].down.is_none());
        assert!(net.blocks[2].down.is_some());
        assert_eq!(net.fc.in_f, 64);
        assert!(net.num_params() > 10_000);
    }

    #[test]
    fn forward_shapes() {
        let mut net = ResNet::resnet18(4, 10, 0);
        let x = Tensor::<f32>::zeros(Shape4::new(2, 3, 32, 32));
        let y = net.forward(&x, false);
        assert_eq!(y.shape(), Shape4::new(2, 10, 1, 1));
    }

    #[test]
    fn forward_backward_roundtrip_runs() {
        let mut net = ResNet::new(4, &[1, 1], 10, 3);
        let x = Tensor::from_fn(Shape4::new(2, 3, 8, 8), |n, c, h, w| {
            ((n + c + h + w) % 5) as f32 * 0.1
        });
        let y = net.forward(&x, true);
        let dy = y.map(|_| 0.1);
        let dx = net.backward(&dy);
        assert_eq!(dx.shape(), x.shape());
        // Gradients should be non-zero somewhere.
        let mut total = 0.0f32;
        net.for_each_param(&mut |p| total += p.grad.iter().map(|g| g.abs()).sum::<f32>());
        assert!(total > 0.0);
    }

    #[test]
    fn deterministic_init() {
        let mut a = ResNet::resnet18(4, 10, 11);
        let mut b = ResNet::resnet18(4, 10, 11);
        let x = Tensor::from_fn(Shape4::new(1, 3, 32, 32), |_, c, h, w| {
            ((c * 3 + h + w) % 7) as f32 * 0.1
        });
        assert_eq!(
            a.forward(&x, false).as_slice(),
            b.forward(&x, false).as_slice()
        );
    }
}
