//! Weight initialization.

use rand::rngs::StdRng;
use rand::Rng;

/// Kaiming-He normal initialization for a weight tensor with `fan_in`
/// input connections: `N(0, sqrt(2 / fan_in))`.
///
/// # Panics
///
/// Panics if `fan_in == 0`.
pub fn kaiming_normal(rng: &mut StdRng, fan_in: usize, out: &mut [f32]) {
    assert!(fan_in > 0, "fan_in must be positive");
    let std = (2.0 / fan_in as f32).sqrt();
    for v in out {
        *v = gaussian(rng) * std;
    }
}

/// Uniform initialization in `[-bound, bound]` (used for linear bias).
pub fn uniform(rng: &mut StdRng, bound: f32, out: &mut [f32]) {
    for v in out {
        *v = rng.gen_range(-bound..=bound);
    }
}

/// Standard normal sample via Box-Muller.
#[must_use]
pub fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0f32..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn kaiming_variance_is_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = vec![0f32; 10_000];
        kaiming_normal(&mut rng, 50, &mut buf);
        let mean: f32 = buf.iter().sum::<f32>() / buf.len() as f32;
        let var: f32 = buf.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / buf.len() as f32;
        let want = 2.0 / 50.0;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - want).abs() / want < 0.1, "var {var} want {want}");
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = vec![0f32; 1000];
        uniform(&mut rng, 0.25, &mut buf);
        assert!(buf.iter().all(|v| v.abs() <= 0.25));
        assert!(buf.iter().any(|v| v.abs() > 0.1));
    }

    #[test]
    #[should_panic(expected = "fan_in")]
    fn zero_fan_in_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        kaiming_normal(&mut rng, 0, &mut [0f32; 4]);
    }
}
