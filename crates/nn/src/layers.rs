//! Trainable layers with forward and backward passes.
//!
//! Each layer caches whatever its backward pass needs during `forward(...,
//! train=true)`; calling [`Layer::backward`] without a preceding training
//! forward is a programming error and panics. Gradient correctness is
//! verified against central finite differences in the unit tests.

use nvfi_tensor::{conv, gemm, im2col, ConvGeom, Mat, Shape4, Tensor};
use rand::rngs::StdRng;

use crate::init;

/// A learnable parameter: value, gradient and SGD momentum buffers of equal
/// length.
#[derive(Clone, Debug, Default)]
pub struct Param {
    /// Parameter values.
    pub data: Vec<f32>,
    /// Accumulated gradient (same length as `data`).
    pub grad: Vec<f32>,
    /// Optimizer momentum state (same length as `data`).
    pub mom: Vec<f32>,
}

impl Param {
    /// Creates a zero-initialized parameter of length `len`.
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        Param {
            data: vec![0.0; len],
            grad: vec![0.0; len],
            mom: vec![0.0; len],
        }
    }

    /// Number of scalar parameters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the parameter is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }
}

/// A differentiable network layer.
pub trait Layer {
    /// Runs the layer. With `train == true`, caches intermediates for
    /// [`Layer::backward`] (and, for batch norm, updates running statistics).
    fn forward(&mut self, x: &Tensor<f32>, train: bool) -> Tensor<f32>;

    /// Backpropagates `dy`, accumulating parameter gradients and returning
    /// the gradient with respect to the layer input.
    ///
    /// # Panics
    ///
    /// Panics if no training forward pass preceded this call.
    fn backward(&mut self, dy: &Tensor<f32>) -> Tensor<f32>;

    /// Visits every learnable parameter (used by the optimizer).
    fn for_each_param(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

// ---------------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------------

/// 2-D convolution with optional bias.
#[derive(Clone, Debug)]
pub struct Conv2d {
    /// Input channels.
    pub in_c: usize,
    /// Output channels.
    pub out_c: usize,
    /// Kernel height/width.
    pub k: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub pad: usize,
    /// Weights, `(out_c, in_c, k, k)` flattened.
    pub weight: Param,
    /// Optional bias, one per output channel.
    pub bias: Option<Param>,
    cache: Option<ConvCache>,
}

#[derive(Clone, Debug)]
struct ConvCache {
    cols: Vec<Mat<f32>>,
    geom: ConvGeom,
    batch: usize,
}

impl Conv2d {
    /// Creates a Kaiming-initialized convolution.
    #[must_use]
    pub fn new(
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        bias: bool,
        rng: &mut StdRng,
    ) -> Self {
        let mut weight = Param::zeros(out_c * in_c * k * k);
        init::kaiming_normal(rng, in_c * k * k, &mut weight.data);
        let bias = bias.then(|| Param::zeros(out_c));
        Conv2d {
            in_c,
            out_c,
            k,
            stride,
            pad,
            weight,
            bias,
            cache: None,
        }
    }

    fn geom(&self, x: Shape4) -> ConvGeom {
        assert_eq!(
            x.c, self.in_c,
            "conv expects {} input channels, got {x}",
            self.in_c
        );
        ConvGeom::new(
            x.with_n(1),
            self.out_c,
            self.k,
            self.k,
            self.stride,
            self.pad,
        )
    }

    /// The weights as a `(K, C, R, S)` tensor (copy).
    #[must_use]
    pub fn weight_tensor(&self) -> Tensor<f32> {
        Tensor::from_vec(
            Shape4::new(self.out_c, self.in_c, self.k, self.k),
            self.weight.data.clone(),
        )
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor<f32>, train: bool) -> Tensor<f32> {
        let geom = self.geom(x.shape());
        let wmat = Mat::from_vec(
            self.out_c,
            self.in_c * self.k * self.k,
            self.weight.data.clone(),
        );
        let n = x.shape().n;
        let mut out = Tensor::zeros(geom.out_shape().with_n(n));
        let mut cols_cache = Vec::with_capacity(if train { n } else { 0 });
        for i in 0..n {
            let cols = im2col::im2col(x.image(i), &geom);
            let mut res = gemm::gemm_f32(&wmat, &cols);
            if let Some(b) = &self.bias {
                for kk in 0..self.out_c {
                    let bv = b.data[kk];
                    for v in res.row_mut(kk) {
                        *v += bv;
                    }
                }
            }
            out.image_mut(i).copy_from_slice(res.as_slice());
            if train {
                cols_cache.push(cols);
            }
        }
        self.cache = train.then_some(ConvCache {
            cols: cols_cache,
            geom,
            batch: n,
        });
        out
    }

    fn backward(&mut self, dy: &Tensor<f32>) -> Tensor<f32> {
        let cache = self
            .cache
            .take()
            .expect("Conv2d::backward without training forward");
        let geom = cache.geom;
        let crs = self.in_c * self.k * self.k;
        let wmat = Mat::from_vec(self.out_c, crs, self.weight.data.clone());
        let wmat_t = wmat.transposed();
        let mut dx = Tensor::zeros(geom.input.with_n(cache.batch));
        for i in 0..cache.batch {
            let dy_mat = Mat::from_vec(self.out_c, geom.oh * geom.ow, dy.image(i).to_vec());
            // dW += dY * cols^T
            let dw = gemm::gemm_f32(&dy_mat, &cache.cols[i].transposed());
            for (g, d) in self.weight.grad.iter_mut().zip(dw.as_slice()) {
                *g += d;
            }
            // db += row sums of dY
            if let Some(b) = &mut self.bias {
                for kk in 0..self.out_c {
                    b.grad[kk] += dy_mat.row(kk).iter().sum::<f32>();
                }
            }
            // dx = col2im(W^T * dY)
            let dcols = gemm::gemm_f32(&wmat_t, &dy_mat);
            im2col::col2im_acc_f32(&dcols, &geom, dx.image_mut(i));
        }
        dx
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }
}

// ---------------------------------------------------------------------------
// BatchNorm2d
// ---------------------------------------------------------------------------

/// Per-channel batch normalization.
#[derive(Clone, Debug)]
pub struct BatchNorm2d {
    /// Number of channels.
    pub c: usize,
    /// Scale (gamma), one per channel.
    pub gamma: Param,
    /// Shift (beta), one per channel.
    pub beta: Param,
    /// Running mean used at inference time.
    pub running_mean: Vec<f32>,
    /// Running variance used at inference time.
    pub running_var: Vec<f32>,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Running-statistics update rate.
    pub momentum: f32,
    cache: Option<BnCache>,
}

#[derive(Clone, Debug)]
struct BnCache {
    xhat: Tensor<f32>,
    inv_std: Vec<f32>,
    count: usize,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer with `gamma = 1`, `beta = 0`.
    #[must_use]
    pub fn new(c: usize) -> Self {
        let mut gamma = Param::zeros(c);
        gamma.data.fill(1.0);
        BatchNorm2d {
            c,
            gamma,
            beta: Param::zeros(c),
            running_mean: vec![0.0; c],
            running_var: vec![1.0; c],
            eps: 1e-5,
            momentum: 0.1,
            cache: None,
        }
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor<f32>, train: bool) -> Tensor<f32> {
        let s = x.shape();
        assert_eq!(
            s.c, self.c,
            "batchnorm expects {} channels, got {s}",
            self.c
        );
        let count = s.n * s.h * s.w;
        let mut out = Tensor::zeros(s);
        if train {
            let mut mean = vec![0f32; self.c];
            let mut var = vec![0f32; self.c];
            for n in 0..s.n {
                for c in 0..s.c {
                    for h in 0..s.h {
                        for w in 0..s.w {
                            mean[c] += x.at(n, c, h, w);
                        }
                    }
                }
            }
            for m in &mut mean {
                *m /= count as f32;
            }
            for n in 0..s.n {
                for c in 0..s.c {
                    for h in 0..s.h {
                        for w in 0..s.w {
                            let d = x.at(n, c, h, w) - mean[c];
                            var[c] += d * d;
                        }
                    }
                }
            }
            for v in &mut var {
                *v /= count as f32;
            }
            for c in 0..self.c {
                self.running_mean[c] =
                    (1.0 - self.momentum) * self.running_mean[c] + self.momentum * mean[c];
                self.running_var[c] =
                    (1.0 - self.momentum) * self.running_var[c] + self.momentum * var[c];
            }
            let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
            let mut xhat = Tensor::zeros(s);
            for n in 0..s.n {
                for c in 0..s.c {
                    for h in 0..s.h {
                        for w in 0..s.w {
                            let xh = (x.at(n, c, h, w) - mean[c]) * inv_std[c];
                            xhat.set(n, c, h, w, xh);
                            out.set(n, c, h, w, self.gamma.data[c] * xh + self.beta.data[c]);
                        }
                    }
                }
            }
            self.cache = Some(BnCache {
                xhat,
                inv_std,
                count,
            });
        } else {
            for n in 0..s.n {
                for c in 0..s.c {
                    let inv = 1.0 / (self.running_var[c] + self.eps).sqrt();
                    for h in 0..s.h {
                        for w in 0..s.w {
                            let xh = (x.at(n, c, h, w) - self.running_mean[c]) * inv;
                            out.set(n, c, h, w, self.gamma.data[c] * xh + self.beta.data[c]);
                        }
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, dy: &Tensor<f32>) -> Tensor<f32> {
        let cache = self
            .cache
            .take()
            .expect("BatchNorm2d::backward without training forward");
        let s = dy.shape();
        let count = cache.count as f32;
        let mut dbeta = vec![0f32; self.c];
        let mut dgamma = vec![0f32; self.c];
        for n in 0..s.n {
            for c in 0..s.c {
                for h in 0..s.h {
                    for w in 0..s.w {
                        let g = dy.at(n, c, h, w);
                        dbeta[c] += g;
                        dgamma[c] += g * cache.xhat.at(n, c, h, w);
                    }
                }
            }
        }
        for c in 0..self.c {
            self.beta.grad[c] += dbeta[c];
            self.gamma.grad[c] += dgamma[c];
        }
        let mut dx = Tensor::zeros(s);
        for n in 0..s.n {
            for c in 0..s.c {
                let scale = self.gamma.data[c] * cache.inv_std[c];
                for h in 0..s.h {
                    for w in 0..s.w {
                        let g = dy.at(n, c, h, w);
                        let xh = cache.xhat.at(n, c, h, w);
                        let d = scale * (g - dbeta[c] / count - xh * dgamma[c] / count);
                        dx.set(n, c, h, w, d);
                    }
                }
            }
        }
        dx
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

// ---------------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------------

/// Elementwise rectified linear unit.
#[derive(Clone, Debug, Default)]
pub struct ReLU {
    mask: Option<Vec<bool>>,
}

impl ReLU {
    /// Creates a ReLU layer.
    #[must_use]
    pub fn new() -> Self {
        ReLU { mask: None }
    }
}

impl Layer for ReLU {
    fn forward(&mut self, x: &Tensor<f32>, train: bool) -> Tensor<f32> {
        let out = x.map(|v| v.max(0.0));
        self.mask = train.then(|| x.as_slice().iter().map(|&v| v > 0.0).collect());
        out
    }

    fn backward(&mut self, dy: &Tensor<f32>) -> Tensor<f32> {
        let mask = self
            .mask
            .take()
            .expect("ReLU::backward without training forward");
        let mut dx = dy.clone();
        for (d, &m) in dx.as_mut_slice().iter_mut().zip(&mask) {
            if !m {
                *d = 0.0;
            }
        }
        dx
    }
}

// ---------------------------------------------------------------------------
// MaxPool2d
// ---------------------------------------------------------------------------

/// Square-window max pooling.
#[derive(Clone, Debug)]
pub struct MaxPool2d {
    /// Window size.
    pub k: usize,
    /// Stride.
    pub stride: usize,
    cache: Option<(Shape4, Vec<usize>)>,
}

impl MaxPool2d {
    /// Creates a max-pooling layer.
    #[must_use]
    pub fn new(k: usize, stride: usize) -> Self {
        MaxPool2d {
            k,
            stride,
            cache: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor<f32>, train: bool) -> Tensor<f32> {
        let s = x.shape();
        let oh = (s.h - self.k) / self.stride + 1;
        let ow = (s.w - self.k) / self.stride + 1;
        let mut out = Tensor::zeros(Shape4::new(s.n, s.c, oh, ow));
        let mut arg = Vec::with_capacity(if train { out.shape().len() } else { 0 });
        for n in 0..s.n {
            for c in 0..s.c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for r in 0..self.k {
                            for q in 0..self.k {
                                let (h, w) = (oy * self.stride + r, ox * self.stride + q);
                                let v = x.at(n, c, h, w);
                                if v > best {
                                    best = v;
                                    best_idx = s.index(n, c, h, w);
                                }
                            }
                        }
                        out.set(n, c, oy, ox, best);
                        if train {
                            arg.push(best_idx);
                        }
                    }
                }
            }
        }
        self.cache = train.then_some((s, arg));
        out
    }

    fn backward(&mut self, dy: &Tensor<f32>) -> Tensor<f32> {
        let (in_shape, arg) = self
            .cache
            .take()
            .expect("MaxPool2d::backward without forward");
        let mut dx = Tensor::zeros(in_shape);
        for (&idx, &g) in arg.iter().zip(dy.as_slice()) {
            dx.as_mut_slice()[idx] += g;
        }
        dx
    }
}

// ---------------------------------------------------------------------------
// GlobalAvgPool
// ---------------------------------------------------------------------------

/// Global average pooling `(N, C, H, W) -> (N, C, 1, 1)`.
#[derive(Clone, Debug, Default)]
pub struct GlobalAvgPool {
    in_shape: Option<Shape4>,
}

impl GlobalAvgPool {
    /// Creates the layer.
    #[must_use]
    pub fn new() -> Self {
        GlobalAvgPool { in_shape: None }
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor<f32>, train: bool) -> Tensor<f32> {
        if train {
            self.in_shape = Some(x.shape());
        }
        nvfi_tensor::pool::global_avg_f32(x)
    }

    fn backward(&mut self, dy: &Tensor<f32>) -> Tensor<f32> {
        let s = self
            .in_shape
            .take()
            .expect("GlobalAvgPool::backward without forward");
        let area = (s.h * s.w) as f32;
        Tensor::from_fn(s, |n, c, _, _| dy.at(n, c, 0, 0) / area)
    }
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

/// Fully connected layer on `(N, C, 1, 1)` feature vectors.
#[derive(Clone, Debug)]
pub struct Linear {
    /// Input features.
    pub in_f: usize,
    /// Output features.
    pub out_f: usize,
    /// Weights, `(out_f, in_f)` row-major.
    pub weight: Param,
    /// Bias, one per output feature.
    pub bias: Param,
    cache: Option<Tensor<f32>>,
}

impl Linear {
    /// Creates a Kaiming-initialized linear layer.
    #[must_use]
    pub fn new(in_f: usize, out_f: usize, rng: &mut StdRng) -> Self {
        let mut weight = Param::zeros(out_f * in_f);
        init::kaiming_normal(rng, in_f, &mut weight.data);
        let mut bias = Param::zeros(out_f);
        init::uniform(rng, 1.0 / (in_f as f32).sqrt(), &mut bias.data);
        Linear {
            in_f,
            out_f,
            weight,
            bias,
            cache: None,
        }
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor<f32>, train: bool) -> Tensor<f32> {
        let s = x.shape();
        assert_eq!(
            (s.c, s.h, s.w),
            (self.in_f, 1, 1),
            "linear expects (N,{},1,1), got {s}",
            self.in_f
        );
        let mut out = Tensor::zeros(Shape4::new(s.n, self.out_f, 1, 1));
        for n in 0..s.n {
            let xi = x.image(n);
            let oi = out.image_mut(n);
            for o in 0..self.out_f {
                let row = &self.weight.data[o * self.in_f..(o + 1) * self.in_f];
                let mut acc = self.bias.data[o];
                for (w, xv) in row.iter().zip(xi) {
                    acc += w * xv;
                }
                oi[o] = acc;
            }
        }
        if train {
            self.cache = Some(x.clone());
        }
        out
    }

    fn backward(&mut self, dy: &Tensor<f32>) -> Tensor<f32> {
        let x = self
            .cache
            .take()
            .expect("Linear::backward without training forward");
        let s = x.shape();
        let mut dx = Tensor::zeros(s);
        for n in 0..s.n {
            let xi = x.image(n);
            let dyi = dy.image(n);
            let dxi = dx.image_mut(n);
            for o in 0..self.out_f {
                let g = dyi[o];
                self.bias.grad[o] += g;
                let wrow = &self.weight.data[o * self.in_f..(o + 1) * self.in_f];
                let grow = &mut self.weight.grad[o * self.in_f..(o + 1) * self.in_f];
                for i in 0..self.in_f {
                    grow[i] += g * xi[i];
                    dxi[i] += g * wrow[i];
                }
            }
        }
        dx
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

// Re-export conv free function used by fold (weights as tensors).
pub use conv::conv2d_f32 as conv_forward_ref;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Numerical gradient check: perturb each input/parameter coordinate and
    /// compare with backprop for the scalar loss `sum(out * coeff)`.
    fn grad_check<L: Layer>(layer: &mut L, x: &Tensor<f32>, tol: f32) {
        let mut rng = StdRng::seed_from_u64(42);
        let out = layer.forward(x, true);
        let coeff: Vec<f32> = (0..out.shape().len())
            .map(|_| init::gaussian(&mut rng))
            .collect();
        let dy = Tensor::from_vec(out.shape(), coeff.clone());
        let dx = layer.backward(&dy);

        let loss = |l: &mut L, input: &Tensor<f32>| -> f32 {
            let o = l.forward(input, false);
            o.as_slice().iter().zip(&coeff).map(|(a, b)| a * b).sum()
        };

        let eps = 1e-2f32;
        // Check input gradients on a sample of coordinates.
        for idx in (0..x.shape().len()).step_by(7) {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let num = (loss(layer, &xp) - loss(layer, &xm)) / (2.0 * eps);
            let ana = dx.as_slice()[idx];
            assert!(
                (num - ana).abs() <= tol * (1.0 + num.abs().max(ana.abs())),
                "input grad {idx}: numerical {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn conv_gradients_match_numerical() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, true, &mut rng);
        let x = Tensor::from_fn(Shape4::new(2, 2, 5, 5), |n, c, h, w| {
            ((n * 97 + c * 31 + h * 7 + w * 3) % 11) as f32 * 0.1 - 0.5
        });
        grad_check(&mut conv, &x, 5e-2);
    }

    #[test]
    fn conv_weight_gradients_match_numerical() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut conv = Conv2d::new(1, 2, 3, 2, 1, true, &mut rng);
        let x = Tensor::from_fn(Shape4::new(1, 1, 5, 5), |_, _, h, w| {
            ((h * 5 + w) % 7) as f32 * 0.2 - 0.6
        });
        let out = conv.forward(&x, true);
        let coeff: Vec<f32> = (0..out.shape().len())
            .map(|i| ((i % 5) as f32) - 2.0)
            .collect();
        let dy = Tensor::from_vec(out.shape(), coeff.clone());
        let _ = conv.backward(&dy);
        let analytic = conv.weight.grad.clone();
        let eps = 1e-2f32;
        for idx in 0..conv.weight.len() {
            let orig = conv.weight.data[idx];
            conv.weight.data[idx] = orig + eps;
            let op = conv.forward(&x, false);
            conv.weight.data[idx] = orig - eps;
            let om = conv.forward(&x, false);
            conv.weight.data[idx] = orig;
            let lp: f32 = op.as_slice().iter().zip(&coeff).map(|(a, b)| a * b).sum();
            let lm: f32 = om.as_slice().iter().zip(&coeff).map(|(a, b)| a * b).sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - analytic[idx]).abs() <= 5e-2 * (1.0 + num.abs()),
                "weight grad {idx}: numerical {num} vs analytic {}",
                analytic[idx]
            );
        }
    }

    #[test]
    fn batchnorm_gradients_match_numerical() {
        let mut bn = BatchNorm2d::new(3);
        // Freeze running-stat updates out of the loss path by checking in
        // train mode with momentum 0 (forward(train=false) uses running
        // stats, which would change the function between evaluations).
        bn.momentum = 0.0;
        let x = Tensor::from_fn(Shape4::new(2, 3, 3, 3), |n, c, h, w| {
            ((n * 13 + c * 7 + h * 3 + w) % 9) as f32 * 0.25 - 1.0
        });
        // Custom check in train mode.
        let out = bn.forward(&x, true);
        let coeff: Vec<f32> = (0..out.shape().len())
            .map(|i| ((i % 7) as f32) * 0.3 - 1.0)
            .collect();
        let dy = Tensor::from_vec(out.shape(), coeff.clone());
        let dx = bn.backward(&dy);
        let eps = 1e-2f32;
        for idx in (0..x.shape().len()).step_by(5) {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let lp: f32 = bn
                .forward(&xp, true)
                .as_slice()
                .iter()
                .zip(&coeff)
                .map(|(a, b)| a * b)
                .sum();
            bn.cache = None;
            let lm: f32 = bn
                .forward(&xm, true)
                .as_slice()
                .iter()
                .zip(&coeff)
                .map(|(a, b)| a * b)
                .sum();
            bn.cache = None;
            let num = (lp - lm) / (2.0 * eps);
            let ana = dx.as_slice()[idx];
            assert!(
                (num - ana).abs() <= 5e-2 * (1.0 + num.abs().max(ana.abs())),
                "bn input grad {idx}: numerical {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn linear_gradients_match_numerical() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lin = Linear::new(6, 4, &mut rng);
        let x = Tensor::from_fn(Shape4::new(3, 6, 1, 1), |n, c, _, _| {
            ((n * 11 + c * 3) % 7) as f32 * 0.2 - 0.5
        });
        grad_check(&mut lin, &x, 2e-2);
    }

    #[test]
    fn relu_masks_negative_gradient() {
        let mut relu = ReLU::new();
        let x = Tensor::from_vec(Shape4::new(1, 1, 1, 4), vec![-1.0f32, 2.0, -3.0, 4.0]);
        let y = relu.forward(&x, true);
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
        let dy = Tensor::from_vec(x.shape(), vec![1.0f32; 4]);
        let dx = relu.backward(&dy);
        assert_eq!(dx.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn maxpool_routes_gradient_to_argmax() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(Shape4::new(1, 1, 2, 2), vec![1.0f32, 5.0, 2.0, 3.0]);
        let y = pool.forward(&x, true);
        assert_eq!(y.as_slice(), &[5.0]);
        let dx = pool.backward(&Tensor::from_vec(y.shape(), vec![1.0])); // gradient 1
        assert_eq!(dx.as_slice(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn global_avg_pool_roundtrip() {
        let mut pool = GlobalAvgPool::new();
        let x = Tensor::from_vec(Shape4::new(1, 1, 2, 2), vec![1.0f32, 2.0, 3.0, 6.0]);
        let y = pool.forward(&x, true);
        assert_eq!(y.as_slice(), &[3.0]);
        let dx = pool.backward(&Tensor::from_vec(y.shape(), vec![4.0]));
        assert_eq!(dx.as_slice(), &[1.0; 4]);
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        bn.running_mean[0] = 1.0;
        bn.running_var[0] = 4.0;
        let x = Tensor::from_vec(Shape4::new(1, 1, 1, 2), vec![1.0f32, 5.0]);
        let y = bn.forward(&x, false);
        assert!((y.at(0, 0, 0, 0) - 0.0).abs() < 1e-4);
        assert!((y.at(0, 0, 0, 1) - 2.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "without")]
    fn backward_requires_forward() {
        let mut relu = ReLU::new();
        let dy = Tensor::<f32>::zeros(Shape4::new(1, 1, 1, 1));
        let _ = relu.backward(&dy);
    }
}
