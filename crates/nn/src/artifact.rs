//! Versioned binary serialization of [`DeployModel`].
//!
//! Experiments train once and cache the folded model on disk; the format is
//! a simple tagged binary layout (magic, version, op list) built with the
//! `bytes` crate. A hand-rolled format is used instead of a serde backend
//! because the offline environment provides no binary serde format crate —
//! see DESIGN.md §5.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use nvfi_tensor::{Mat, Shape4, Tensor};

use crate::deploy::{DeployModel, DeployOp, DeployOpKind};

const MAGIC: u32 = 0x4E56_4649; // "NVFI"
const VERSION: u16 = 1;

const TAG_CONV: u8 = 1;
const TAG_MAXPOOL: u8 = 2;
const TAG_GAP: u8 = 3;
const TAG_LINEAR: u8 = 4;

/// Error decoding a model artifact.
#[derive(Debug)]
pub enum ArtifactError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Magic number mismatch: not an artifact file.
    BadMagic(u32),
    /// Unsupported format version.
    BadVersion(u16),
    /// Structurally invalid payload.
    Corrupt(&'static str),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact i/o error: {e}"),
            ArtifactError::BadMagic(m) => write!(f, "bad magic {m:#010x}, not a model artifact"),
            ArtifactError::BadVersion(v) => write!(f, "unsupported artifact version {v}"),
            ArtifactError::Corrupt(what) => write!(f, "corrupt artifact: {what}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ArtifactError {
    fn from(e: io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

/// Serializes a model to bytes.
#[must_use]
pub fn to_bytes(model: &DeployModel) -> Vec<u8> {
    let mut b = BytesMut::new();
    b.put_u32_le(MAGIC);
    b.put_u16_le(VERSION);
    put_shape(&mut b, model.input_shape);
    b.put_u32_le(model.ops.len() as u32);
    b.put_u32_le(model.output as u32);
    for op in &model.ops {
        b.put_u32_le(op.input as u32);
        match &op.kind {
            DeployOpKind::Conv {
                weight,
                bias,
                stride,
                pad,
                relu,
                fuse_add,
            } => {
                b.put_u8(TAG_CONV);
                put_tensor(&mut b, weight);
                put_f32s(&mut b, bias);
                b.put_u32_le(*stride as u32);
                b.put_u32_le(*pad as u32);
                b.put_u8(u8::from(*relu));
                match fuse_add {
                    Some(v) => {
                        b.put_u8(1);
                        b.put_u32_le(*v as u32);
                    }
                    None => b.put_u8(0),
                }
            }
            DeployOpKind::MaxPool { k, stride } => {
                b.put_u8(TAG_MAXPOOL);
                b.put_u32_le(*k as u32);
                b.put_u32_le(*stride as u32);
            }
            DeployOpKind::GlobalAvgPool => b.put_u8(TAG_GAP),
            DeployOpKind::Linear { weight, bias } => {
                b.put_u8(TAG_LINEAR);
                b.put_u32_le(weight.rows() as u32);
                b.put_u32_le(weight.cols() as u32);
                put_f32s(&mut b, weight.as_slice());
                put_f32s(&mut b, bias);
            }
        }
    }
    b.to_vec()
}

/// Deserializes a model from bytes.
///
/// # Errors
///
/// Returns [`ArtifactError`] if the payload is not a valid artifact.
pub fn from_bytes(data: &[u8]) -> Result<DeployModel, ArtifactError> {
    let mut b = Bytes::copy_from_slice(data);
    if b.remaining() < 6 {
        return Err(ArtifactError::Corrupt("truncated header"));
    }
    let magic = b.get_u32_le();
    if magic != MAGIC {
        return Err(ArtifactError::BadMagic(magic));
    }
    let version = b.get_u16_le();
    if version != VERSION {
        return Err(ArtifactError::BadVersion(version));
    }
    let input_shape = get_shape(&mut b)?;
    let n_ops = get_u32(&mut b)? as usize;
    let output = get_u32(&mut b)? as usize;
    if n_ops > 1_000_000 {
        return Err(ArtifactError::Corrupt("absurd op count"));
    }
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        let input = get_u32(&mut b)? as usize;
        if b.remaining() < 1 {
            return Err(ArtifactError::Corrupt("missing op tag"));
        }
        let kind = match b.get_u8() {
            TAG_CONV => {
                let weight = get_tensor(&mut b)?;
                let bias = get_f32s(&mut b)?;
                let stride = get_u32(&mut b)? as usize;
                let pad = get_u32(&mut b)? as usize;
                if b.remaining() < 2 {
                    return Err(ArtifactError::Corrupt("truncated conv op"));
                }
                let relu = b.get_u8() != 0;
                let fuse_add = match b.get_u8() {
                    0 => None,
                    1 => Some(get_u32(&mut b)? as usize),
                    _ => return Err(ArtifactError::Corrupt("bad fuse_add flag")),
                };
                DeployOpKind::Conv {
                    weight,
                    bias,
                    stride,
                    pad,
                    relu,
                    fuse_add,
                }
            }
            TAG_MAXPOOL => {
                let k = get_u32(&mut b)? as usize;
                let stride = get_u32(&mut b)? as usize;
                DeployOpKind::MaxPool { k, stride }
            }
            TAG_GAP => DeployOpKind::GlobalAvgPool,
            TAG_LINEAR => {
                let rows = get_u32(&mut b)? as usize;
                let cols = get_u32(&mut b)? as usize;
                let w = get_f32s(&mut b)?;
                if w.len() != rows * cols {
                    return Err(ArtifactError::Corrupt("linear weight length"));
                }
                let bias = get_f32s(&mut b)?;
                DeployOpKind::Linear {
                    weight: Mat::from_vec(rows, cols, w),
                    bias,
                }
            }
            _ => return Err(ArtifactError::Corrupt("unknown op tag")),
        };
        ops.push(DeployOp { input, kind });
    }
    if output > ops.len() {
        return Err(ArtifactError::Corrupt("output id out of range"));
    }
    Ok(DeployModel {
        input_shape,
        ops,
        output,
    })
}

/// Saves a model artifact to a file.
///
/// # Errors
///
/// Returns an error if the file cannot be written.
pub fn save_file(model: &DeployModel, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
    Ok(fs::write(path, to_bytes(model))?)
}

/// Loads a model artifact from a file.
///
/// # Errors
///
/// Returns [`ArtifactError`] on I/O failure or malformed content.
pub fn load_file(path: impl AsRef<Path>) -> Result<DeployModel, ArtifactError> {
    from_bytes(&fs::read(path)?)
}

fn put_shape(b: &mut BytesMut, s: Shape4) {
    b.put_u32_le(s.n as u32);
    b.put_u32_le(s.c as u32);
    b.put_u32_le(s.h as u32);
    b.put_u32_le(s.w as u32);
}

fn get_shape(b: &mut Bytes) -> Result<Shape4, ArtifactError> {
    Ok(Shape4::new(
        get_u32(b)? as usize,
        get_u32(b)? as usize,
        get_u32(b)? as usize,
        get_u32(b)? as usize,
    ))
}

fn put_tensor(b: &mut BytesMut, t: &Tensor<f32>) {
    put_shape(b, t.shape());
    put_f32s(b, t.as_slice());
}

fn get_tensor(b: &mut Bytes) -> Result<Tensor<f32>, ArtifactError> {
    let shape = get_shape(b)?;
    let data = get_f32s(b)?;
    if data.len() != shape.len() {
        return Err(ArtifactError::Corrupt("tensor length mismatch"));
    }
    Ok(Tensor::from_vec(shape, data))
}

fn put_f32s(b: &mut BytesMut, v: &[f32]) {
    b.put_u32_le(v.len() as u32);
    for &x in v {
        b.put_f32_le(x);
    }
}

fn get_f32s(b: &mut Bytes) -> Result<Vec<f32>, ArtifactError> {
    let len = get_u32(b)? as usize;
    if b.remaining() < len * 4 {
        return Err(ArtifactError::Corrupt("truncated f32 array"));
    }
    Ok((0..len).map(|_| b.get_f32_le()).collect())
}

fn get_u32(b: &mut Bytes) -> Result<u32, ArtifactError> {
    if b.remaining() < 4 {
        return Err(ArtifactError::Corrupt("truncated u32"));
    }
    Ok(b.get_u32_le())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fold::fold_resnet;
    use crate::resnet::ResNet;

    #[test]
    fn roundtrip_preserves_forward() {
        let net = ResNet::new(4, &[1, 1], 10, 2);
        let model = fold_resnet(&net, 16);
        let bytes = to_bytes(&model);
        let restored = from_bytes(&bytes).unwrap();
        let x = Tensor::from_fn(Shape4::new(1, 3, 16, 16), |_, c, h, w| {
            ((c * 5 + h * 3 + w) % 7) as f32 * 0.1
        });
        assert_eq!(
            model.forward(&x).as_slice(),
            restored.forward(&x).as_slice()
        );
        assert_eq!(model.ops.len(), restored.ops.len());
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            from_bytes(&[1, 2, 3]),
            Err(ArtifactError::Corrupt(_))
        ));
        let mut bytes = to_bytes(&fold_resnet(&ResNet::new(4, &[1], 10, 0), 8));
        bytes[0] ^= 0xFF;
        assert!(matches!(
            from_bytes(&bytes),
            Err(ArtifactError::BadMagic(_))
        ));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut bytes = to_bytes(&fold_resnet(&ResNet::new(4, &[1], 10, 0), 8));
        bytes[4] = 0xFF;
        assert!(matches!(
            from_bytes(&bytes),
            Err(ArtifactError::BadVersion(_))
        ));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let bytes = to_bytes(&fold_resnet(&ResNet::new(4, &[1], 10, 0), 8));
        // Any strict prefix must fail, never panic.
        for cut in (0..bytes.len()).step_by(97) {
            assert!(from_bytes(&bytes[..cut]).is_err(), "prefix {cut} accepted");
        }
    }

    #[test]
    fn file_roundtrip() {
        let model = fold_resnet(&ResNet::new(4, &[1], 10, 1), 8);
        let dir = std::env::temp_dir().join("nvfi_artifact_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.nvfi");
        save_file(&model, &path).unwrap();
        let restored = load_file(&path).unwrap();
        assert_eq!(restored.ops.len(), model.ops.len());
    }
}
