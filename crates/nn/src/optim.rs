//! Stochastic gradient descent with momentum and weight decay.

use crate::layers::{Layer, Param};

/// SGD-with-momentum optimizer configuration.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// Decoupled L2 weight decay.
    pub weight_decay: f32,
}

impl Default for Sgd {
    fn default() -> Self {
        Sgd {
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 5e-4,
        }
    }
}

impl Sgd {
    /// Applies one update step to every parameter of `net` using the
    /// gradients accumulated since the last [`step`](Self::step), then
    /// clears the gradients.
    pub fn step(&self, net: &mut dyn Layer) {
        net.for_each_param(&mut |p: &mut Param| {
            for i in 0..p.data.len() {
                let g = p.grad[i] + self.weight_decay * p.data[i];
                p.mom[i] = self.momentum * p.mom[i] + g;
                p.data[i] -= self.lr * p.mom[i];
            }
            p.zero_grad();
        });
    }

    /// Cosine learning-rate schedule from `base_lr` to ~0 across
    /// `total_steps`, evaluated at `step`.
    #[must_use]
    pub fn cosine_lr(base_lr: f32, step: usize, total_steps: usize) -> f32 {
        if total_steps == 0 {
            return base_lr;
        }
        let t = (step.min(total_steps)) as f32 / total_steps as f32;
        0.5 * base_lr * (1.0 + (std::f32::consts::PI * t).cos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvfi_tensor::Tensor;

    /// A single scalar parameter "layer" for testing the optimizer.
    struct Scalar {
        p: Param,
    }

    impl Layer for Scalar {
        fn forward(&mut self, x: &Tensor<f32>, _train: bool) -> Tensor<f32> {
            x.clone()
        }
        fn backward(&mut self, dy: &Tensor<f32>) -> Tensor<f32> {
            dy.clone()
        }
        fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.p);
        }
    }

    #[test]
    fn descends_a_quadratic() {
        // Minimize f(x) = x^2 with grad 2x.
        let mut layer = Scalar { p: Param::zeros(1) };
        layer.p.data[0] = 4.0;
        let opt = Sgd {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
        };
        for _ in 0..60 {
            layer.p.grad[0] = 2.0 * layer.p.data[0];
            opt.step(&mut layer);
        }
        assert!(layer.p.data[0].abs() < 1e-3, "x = {}", layer.p.data[0]);
    }

    #[test]
    fn momentum_accelerates() {
        let run = |momentum: f32| {
            let mut layer = Scalar { p: Param::zeros(1) };
            layer.p.data[0] = 4.0;
            let opt = Sgd {
                lr: 0.02,
                momentum,
                weight_decay: 0.0,
            };
            for _ in 0..20 {
                layer.p.grad[0] = 2.0 * layer.p.data[0];
                opt.step(&mut layer);
            }
            layer.p.data[0].abs()
        };
        assert!(run(0.9) < run(0.0), "momentum should converge faster here");
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut layer = Scalar { p: Param::zeros(1) };
        layer.p.data[0] = 1.0;
        let opt = Sgd {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 1.0,
        };
        opt.step(&mut layer); // gradient is zero; only decay acts
        assert!(layer.p.data[0] < 1.0);
    }

    #[test]
    fn gradients_cleared_after_step() {
        let mut layer = Scalar { p: Param::zeros(1) };
        layer.p.grad[0] = 5.0;
        Sgd::default().step(&mut layer);
        assert_eq!(layer.p.grad[0], 0.0);
    }

    #[test]
    fn cosine_schedule_endpoints() {
        assert!((Sgd::cosine_lr(1.0, 0, 100) - 1.0).abs() < 1e-6);
        assert!(Sgd::cosine_lr(1.0, 100, 100) < 1e-6);
        let mid = Sgd::cosine_lr(1.0, 50, 100);
        assert!((mid - 0.5).abs() < 1e-6);
    }
}
