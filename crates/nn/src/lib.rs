//! Float CNN training stack: the substrate that replaces the paper's
//! "pre-trained ResNet-18 from the Tengine model zoo".
//!
//! The crate provides everything needed to produce a trained, deployable
//! CIFAR-class CNN from scratch, offline and deterministically:
//!
//! * [`layers`] — Conv2d / BatchNorm2d / ReLU / MaxPool / GlobalAvgPool /
//!   Linear with full forward **and backward** passes (tape-style caches);
//! * [`resnet`] — a width-configurable ResNet-18 (CIFAR variant: 3x3 stem,
//!   stages `[2,2,2,2]`, widths `[w, 2w, 4w, 8w]`);
//! * [`train`] — SGD-with-momentum trainer with cosine learning-rate decay;
//! * [`fold`] — batch-norm folding into convolutions, producing the
//!   inference-only [`DeployModel`] consumed by the quantizer and compiler;
//! * [`artifact`] — a versioned binary serialization of [`DeployModel`] so
//!   experiments can cache the trained network.
//!
//! # Examples
//!
//! Training a tiny network end to end (see `examples/train_quantize_deploy.rs`
//! for the full pipeline):
//!
//! ```
//! use nvfi_dataset::{SynthCifar, SynthCifarConfig};
//! use nvfi_nn::{resnet::ResNet, train::{Trainer, TrainConfig}};
//!
//! let data = SynthCifar::new(SynthCifarConfig { train: 40, test: 20, ..Default::default() })
//!     .generate();
//! let mut net = ResNet::resnet18(4, 10, 1); // width 4, 10 classes, seed 1
//! let cfg = TrainConfig { epochs: 1, batch: 8, ..Default::default() };
//! let stats = Trainer::new(cfg).fit(&mut net, &data.train, &data.test);
//! assert_eq!(stats.epochs.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Index loops here mirror the tensor math they implement; iterator
// rewrites would obscure the (n, c, h, w) structure.
#![allow(clippy::needless_range_loop)]

pub mod artifact;
pub mod deploy;
pub mod fold;
pub mod init;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod resnet;
pub mod train;

pub use deploy::{DeployModel, DeployOp, DeployOpKind, ValueId};
pub use layers::Param;
