//! Softmax cross-entropy loss.

use nvfi_tensor::Tensor;

/// Computes mean softmax cross-entropy over a batch of `(N, classes, 1, 1)`
/// logits, returning `(loss, dlogits)` where `dlogits` is already divided by
/// the batch size.
///
/// # Panics
///
/// Panics if `labels.len() != logits.shape().n` or a label is out of range.
#[must_use]
pub fn softmax_cross_entropy(logits: &Tensor<f32>, labels: &[u8]) -> (f32, Tensor<f32>) {
    let s = logits.shape();
    assert_eq!(s.n, labels.len(), "labels do not match batch");
    assert_eq!((s.h, s.w), (1, 1), "logits must be (N, C, 1, 1)");
    let classes = s.c;
    let mut dlogits = Tensor::zeros(s);
    let mut loss = 0f32;
    for n in 0..s.n {
        let row = logits.image(n);
        let label = labels[n] as usize;
        assert!(label < classes, "label {label} out of range");
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        loss += -(exps[label] / sum).ln();
        let drow = dlogits.image_mut(n);
        for c in 0..classes {
            let p = exps[c] / sum;
            drow[c] = (p - if c == label { 1.0 } else { 0.0 }) / s.n as f32;
        }
    }
    (loss / s.n as f32, dlogits)
}

/// Argmax prediction for each batch item of `(N, classes, 1, 1)` logits.
#[must_use]
pub fn predictions(logits: &Tensor<f32>) -> Vec<u8> {
    let s = logits.shape();
    (0..s.n)
        .map(|n| {
            let row = logits.image(n);
            let mut best = (f32::NEG_INFINITY, 0u8);
            for (c, &v) in row.iter().enumerate() {
                if v > best.0 {
                    best = (v, c as u8);
                }
            }
            best.1
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvfi_tensor::Shape4;

    #[test]
    fn perfect_prediction_has_low_loss() {
        let logits = Tensor::from_vec(Shape4::new(1, 3, 1, 1), vec![10.0f32, -10.0, -10.0]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3, "loss {loss}");
    }

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Tensor::from_vec(Shape4::new(1, 4, 1, 1), vec![0f32; 4]);
        let (loss, dl) = softmax_cross_entropy(&logits, &[2]);
        assert!((loss - 4f32.ln()).abs() < 1e-5);
        // Gradient: p - onehot = 0.25 everywhere except -0.75 at the label.
        assert!((dl.at(0, 2, 0, 0) + 0.75).abs() < 1e-5);
        assert!((dl.at(0, 0, 0, 0) - 0.25).abs() < 1e-5);
    }

    #[test]
    fn gradient_sums_to_zero() {
        let logits = Tensor::from_vec(
            Shape4::new(2, 3, 1, 1),
            vec![1.0f32, 2.0, 3.0, -1.0, 0.0, 1.0],
        );
        let (_, dl) = softmax_cross_entropy(&logits, &[1, 2]);
        let total: f32 = dl.as_slice().iter().sum();
        assert!(total.abs() < 1e-5);
    }

    #[test]
    fn numerical_gradient_matches() {
        let base = vec![0.5f32, -0.3, 0.8, 0.1];
        let labels = [3u8];
        let logits = Tensor::from_vec(Shape4::new(1, 4, 1, 1), base.clone());
        let (_, dl) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut lp = base.clone();
            lp[i] += eps;
            let mut lm = base.clone();
            lm[i] -= eps;
            let (fp, _) =
                softmax_cross_entropy(&Tensor::from_vec(Shape4::new(1, 4, 1, 1), lp), &labels);
            let (fm, _) =
                softmax_cross_entropy(&Tensor::from_vec(Shape4::new(1, 4, 1, 1), lm), &labels);
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - dl.as_slice()[i]).abs() < 1e-3, "coord {i}");
        }
    }

    #[test]
    fn predictions_argmax() {
        let logits = Tensor::from_vec(
            Shape4::new(2, 3, 1, 1),
            vec![1.0f32, 5.0, 2.0, 9.0, 0.0, 3.0],
        );
        assert_eq!(predictions(&logits), vec![1, 0]);
    }
}
