//! Post-training int8 quantization and the bit-exact CPU reference executor.
//!
//! This crate replaces the int8 deployment leg of the paper's Tengine/Caffe
//! toolchain: a folded float [`DeployModel`](nvfi_nn::DeployModel) is
//! calibrated on sample data and converted into a [`QuantModel`] — symmetric
//! int8 activations and weights (optionally per-output-channel weight
//! scales), i32 biases and fixed-point [`Requant`](nvfi_hwnum::Requant)
//! rescaling, exactly the arithmetic NVDLA's int8 pipeline performs.
//!
//! Two executors run a [`QuantModel`]:
//!
//! * [`exec`] — the CPU reference (1..N threads). The accelerator model in
//!   `nvfi-accel` is required to match it **bit-exactly** in the fault-free
//!   case; this is what makes accuracy comparisons meaningful.
//! * [`swfi`] — the paper's "easiest but least reliable" baseline: fault
//!   injection at the CNN *execution-graph* level (stuck-at-0 output
//!   channels, disconnected residual components), with no knowledge of the
//!   hardware mapping.
//!
//! # Examples
//!
//! ```
//! use nvfi_dataset::{SynthCifar, SynthCifarConfig};
//! use nvfi_nn::{fold::fold_resnet, resnet::ResNet};
//! use nvfi_quant::{quantize, QuantConfig};
//!
//! let data = SynthCifar::new(SynthCifarConfig { train: 8, test: 8, ..Default::default() })
//!     .generate();
//! let net = ResNet::new(4, &[1, 1], 10, 1);
//! let deploy = fold_resnet(&net, 32);
//! let qmodel = quantize(&deploy, &data.train.images, &QuantConfig::default()).unwrap();
//! let preds = qmodel.classify(&data.test.images, 1);
//! assert_eq!(preds.len(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod build;
pub mod exec;
mod model;
pub mod swfi;

pub use build::{quantize, QuantConfig, QuantError};
pub use model::{QConv, QLinear, QOp, QOpKind, QuantModel};
