//! Batch input quantization — the f32 → i8 pass campaigns hoist to
//! once-per-campaign.
//!
//! Quantization is elementwise (`clamp(round(x / scale))`, see
//! [`sat::quantize_f32_to_i8`]), so quantizing a concatenation equals
//! concatenating the quantizations: the once-per-campaign pass is provably
//! shard-order-invariant (property-tested in `tests/proptests.rs`).
//!
//! Every pass through [`quantize_slice_into`] (and the helpers built on it:
//! [`quantize_slice`], [`crate::QuantModel::quantize_input`], the f32
//! wrappers in `nvfi-accel` and `nvfi`'s `DevicePool`) bumps a process-wide
//! counter, readable via [`quantization_passes`]. The counter is a test
//! probe: `tests/quantize_once.rs` in the workspace root asserts that one
//! campaign performs exactly **one** eval-set quantization, i.e. that no
//! per-work-item or per-shard re-quantization crept back into the hot path.

use std::sync::OnceLock;

use nvfi_hwnum::sat;
use nvfi_obs::metrics::{self, Counter};

/// Process-wide count of batch-quantization passes (not elements), backed
/// by the `nvfi_obs` metrics registry under `quantization_passes`.
fn passes() -> &'static Counter {
    static PASSES: OnceLock<Counter> = OnceLock::new();
    PASSES.get_or_init(|| metrics::counter("quantization_passes"))
}

/// Number of batch-quantization passes performed by this process so far.
///
/// Monotonic; meaningful as a *delta* around the code under test. Shared by
/// every thread, so tests asserting exact deltas must not run concurrently
/// with other quantizing tests (give them their own test binary).
#[must_use]
pub fn quantization_passes() -> u64 {
    passes().get()
}

/// Quantizes a dense f32 slice to i8 into `dst` (cleared and refilled), and
/// counts one pass.
pub fn quantize_slice_into(src: &[f32], scale: f32, dst: &mut Vec<i8>) {
    dst.clear();
    dst.extend(src.iter().map(|&v| sat::quantize_f32_to_i8(v, scale)));
    passes().inc();
}

/// Allocating convenience wrapper around [`quantize_slice_into`].
#[must_use]
pub fn quantize_slice(src: &[f32], scale: f32) -> Vec<i8> {
    let mut out = Vec::with_capacity(src.len());
    quantize_slice_into(src, scale, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_matches_elementwise_and_counts_passes() {
        let src = [-2.0f32, -0.05, 0.0, 0.05, 1.0, 100.0];
        let before = quantization_passes();
        let q = quantize_slice(&src, 0.1);
        assert_eq!(quantization_passes() - before, 1);
        let want: Vec<i8> = src
            .iter()
            .map(|&v| sat::quantize_f32_to_i8(v, 0.1))
            .collect();
        assert_eq!(q, want);
    }

    #[test]
    fn into_reuses_capacity() {
        let mut buf = Vec::with_capacity(16);
        quantize_slice_into(&[1.0f32; 8], 0.5, &mut buf);
        assert_eq!(buf, vec![2i8; 8]);
        let cap = buf.capacity();
        quantize_slice_into(&[0.5f32; 4], 0.5, &mut buf);
        assert_eq!(buf, vec![1i8; 4]);
        assert_eq!(buf.capacity(), cap, "refill must not reallocate");
    }
}
