//! The quantizer: float [`DeployModel`] + calibration data -> [`QuantModel`].

use std::fmt;

use nvfi_hwnum::Requant;
use nvfi_nn::{DeployModel, DeployOpKind};
use nvfi_tensor::Tensor;

use crate::model::{QConv, QLinear, QOp, QOpKind, QuantModel};

/// Quantizer configuration.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct QuantConfig {
    /// Use one weight scale per output channel (better accuracy, as Tengine
    /// does) instead of per tensor.
    pub per_channel: bool,
    /// Process calibration images in chunks of this size.
    pub calib_chunk: usize,
}

impl Default for QuantConfig {
    fn default() -> Self {
        QuantConfig {
            per_channel: true,
            calib_chunk: 16,
        }
    }
}

/// Error produced by [`quantize`].
#[derive(Debug)]
pub enum QuantError {
    /// The calibration set is empty.
    EmptyCalibration,
    /// An activation or weight range degenerated to zero and no scale could
    /// be derived.
    DegenerateScale {
        /// Which value/op the failure occurred at.
        at: String,
    },
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::EmptyCalibration => write!(f, "calibration set is empty"),
            QuantError::DegenerateScale { at } => {
                write!(f, "degenerate quantization scale at {at}")
            }
        }
    }
}

impl std::error::Error for QuantError {}

/// Quantizes `model` using `calib` images (f32, same shape as the model
/// input) to derive activation ranges.
///
/// # Errors
///
/// Returns [`QuantError`] if calibration data is empty or a scale cannot be
/// derived.
pub fn quantize(
    model: &DeployModel,
    calib: &Tensor<f32>,
    config: &QuantConfig,
) -> Result<QuantModel, QuantError> {
    if calib.shape().n == 0 {
        return Err(QuantError::EmptyCalibration);
    }
    // --- Pass 1: observe per-value activation ranges on the calibration set.
    let n_values = model.ops.len() + 1;
    let mut absmax = vec![0f32; n_values];
    let n = calib.shape().n;
    let chunk = config.calib_chunk.max(1);
    let mut i = 0;
    while i < n {
        let hi = (i + chunk).min(n);
        let idx: Vec<usize> = (i..hi).collect();
        let batch = gather_images(calib, &idx);
        let values = model.forward_values(&batch);
        for (v, m) in values.iter().zip(absmax.iter_mut()) {
            if let Some(t) = v {
                *m = m.max(t.max_abs());
            }
        }
        i = hi;
    }

    // --- Derive activation scales: s = absmax / 127 (symmetric).
    let scale_of = |value: usize, absmax: &[f32]| -> Result<f32, QuantError> {
        let m = absmax[value];
        if !(m.is_finite()) || m <= 0.0 {
            return Err(QuantError::DegenerateScale {
                at: format!("value {value}"),
            });
        }
        Ok(m / 127.0)
    };

    let input_scale = scale_of(0, &absmax)?;
    let mut scales = vec![0f32; n_values];
    scales[0] = input_scale;

    let mut ops = Vec::with_capacity(model.ops.len());
    for (i, op) in model.ops.iter().enumerate() {
        let s_in = scales[op.input];
        let (kind, out_scale) = match &op.kind {
            DeployOpKind::Conv {
                weight,
                bias,
                stride,
                pad,
                relu,
                fuse_add,
            } => {
                let s_out = scale_of(i + 1, &absmax)?;
                let k = weight.shape().n;
                let per_k = weight.shape().len() / k;
                // Weight scales (per channel or per tensor).
                let wslice = weight.as_slice();
                let mut w_scales = Vec::new();
                if config.per_channel {
                    for kk in 0..k {
                        let m = wslice[kk * per_k..(kk + 1) * per_k]
                            .iter()
                            .fold(0f32, |a, &v| a.max(v.abs()));
                        w_scales.push(scale_from_absmax(m, &format!("conv {i} ch {kk}"))?);
                    }
                } else {
                    let m = wslice.iter().fold(0f32, |a, &v| a.max(v.abs()));
                    w_scales.push(scale_from_absmax(m, &format!("conv {i}"))?);
                }
                let qweight = quantize_weights(weight, &w_scales, per_k);
                let mut qbias = Vec::with_capacity(k);
                let mut requants = Vec::with_capacity(w_scales.len());
                for kk in 0..k {
                    let sw = w_scales[if w_scales.len() == 1 { 0 } else { kk }];
                    qbias.push((bias[kk] / (s_in * sw)).round() as i32);
                }
                for &sw in &w_scales {
                    let r = Requant::from_scale(f64::from(s_in) * f64::from(sw) / f64::from(s_out))
                        .map_err(|_| QuantError::DegenerateScale {
                            at: format!("conv {i} requant"),
                        })?;
                    requants.push(r);
                }
                let add_requant = match fuse_add {
                    Some(a) => {
                        let s_res = scales[*a];
                        Some(
                            Requant::from_scale(f64::from(s_res) / f64::from(s_out)).map_err(
                                |_| QuantError::DegenerateScale {
                                    at: format!("conv {i} add"),
                                },
                            )?,
                        )
                    }
                    None => None,
                };
                (
                    QOpKind::Conv(QConv {
                        weight: qweight,
                        bias: qbias,
                        stride: *stride,
                        pad: *pad,
                        relu: *relu,
                        fuse_add: *fuse_add,
                        requant: requants,
                        add_requant,
                        out_scale: s_out,
                    }),
                    s_out,
                )
            }
            DeployOpKind::MaxPool { k, stride } => (
                QOpKind::MaxPool {
                    k: *k,
                    stride: *stride,
                },
                s_in,
            ),
            DeployOpKind::GlobalAvgPool => (QOpKind::GlobalAvgPool, s_in),
            DeployOpKind::Linear { weight, bias } => {
                let m = weight.as_slice().iter().fold(0f32, |a, &v| a.max(v.abs()));
                let sw = scale_from_absmax(m, &format!("linear {i}"))?;
                let qw = nvfi_tensor::Mat::from_vec(
                    weight.rows(),
                    weight.cols(),
                    weight
                        .as_slice()
                        .iter()
                        .map(|&v| nvfi_hwnum::sat::quantize_f32_to_i8(v, sw))
                        .collect(),
                );
                let out_scale = s_in * sw;
                let qbias: Vec<i32> = bias
                    .iter()
                    .map(|&b| (b / out_scale).round() as i32)
                    .collect();
                (
                    QOpKind::Linear(QLinear {
                        weight: qw,
                        bias: qbias,
                        out_scale,
                    }),
                    out_scale,
                )
            }
        };
        scales[i + 1] = out_scale;
        ops.push(QOp {
            input: op.input,
            kind,
            out_scale,
        });
    }

    Ok(QuantModel {
        input_shape: model.input_shape,
        input_scale,
        ops,
        output: model.output,
    })
}

fn scale_from_absmax(m: f32, at: &str) -> Result<f32, QuantError> {
    if !m.is_finite() || m <= 0.0 {
        return Err(QuantError::DegenerateScale { at: at.to_owned() });
    }
    Ok(m / 127.0)
}

fn quantize_weights(w: &Tensor<f32>, scales: &[f32], per_k: usize) -> Tensor<i8> {
    let mut out = Vec::with_capacity(w.shape().len());
    for (idx, &v) in w.as_slice().iter().enumerate() {
        let s = if scales.len() == 1 {
            scales[0]
        } else {
            scales[idx / per_k]
        };
        out.push(nvfi_hwnum::sat::quantize_f32_to_i8(v, s));
    }
    Tensor::from_vec(w.shape(), out)
}

fn gather_images(images: &Tensor<f32>, idx: &[usize]) -> Tensor<f32> {
    let s = images.shape();
    let mut out = Tensor::zeros(nvfi_tensor::Shape4::new(idx.len(), s.c, s.h, s.w));
    for (row, &i) in idx.iter().enumerate() {
        out.image_mut(row).copy_from_slice(images.image(i));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvfi_dataset::{SynthCifar, SynthCifarConfig};
    use nvfi_nn::fold::fold_resnet;
    use nvfi_nn::resnet::ResNet;

    fn setup() -> (DeployModel, Tensor<f32>) {
        let data = SynthCifar::new(SynthCifarConfig {
            train: 24,
            test: 0,
            ..Default::default()
        })
        .generate();
        let net = ResNet::new(4, &[1, 1], 10, 3);
        (fold_resnet(&net, 32), data.train.images)
    }

    #[test]
    fn produces_one_qop_per_deploy_op() {
        let (model, calib) = setup();
        let q = quantize(&model, &calib, &QuantConfig::default()).unwrap();
        assert_eq!(q.ops.len(), model.ops.len());
        assert_eq!(q.output, model.output);
        assert!(q.input_scale > 0.0);
    }

    #[test]
    fn per_channel_has_k_requants() {
        let (model, calib) = setup();
        let q = quantize(
            &model,
            &calib,
            &QuantConfig {
                per_channel: true,
                calib_chunk: 8,
            },
        )
        .unwrap();
        let QOpKind::Conv(c) = &q.ops[0].kind else {
            panic!("first op should be conv")
        };
        assert_eq!(c.requant.len(), c.weight.shape().n);
        let qt = quantize(
            &model,
            &calib,
            &QuantConfig {
                per_channel: false,
                calib_chunk: 8,
            },
        )
        .unwrap();
        let QOpKind::Conv(ct) = &qt.ops[0].kind else {
            panic!()
        };
        assert_eq!(ct.requant.len(), 1);
    }

    #[test]
    fn empty_calibration_rejected() {
        let (model, calib) = setup();
        let empty = calib.slice_image(0);
        let none = nvfi_tensor::Tensor::<f32>::zeros(empty.shape().with_n(0));
        assert!(matches!(
            quantize(&model, &none, &QuantConfig::default()),
            Err(QuantError::EmptyCalibration)
        ));
    }

    #[test]
    fn pool_scales_pass_through() {
        let (model, calib) = setup();
        let q = quantize(&model, &calib, &QuantConfig::default()).unwrap();
        // GlobalAvgPool op preserves its input scale.
        for (i, op) in q.ops.iter().enumerate() {
            if matches!(op.kind, QOpKind::GlobalAvgPool) {
                let in_scale = if op.input == 0 {
                    q.input_scale
                } else {
                    q.ops[op.input - 1].out_scale
                };
                assert_eq!(op.out_scale, in_scale, "op {i}");
            }
        }
    }

    #[test]
    fn macs_count_positive() {
        let (model, calib) = setup();
        let q = quantize(&model, &calib, &QuantConfig::default()).unwrap();
        assert!(q.macs_per_inference() > 100_000);
    }
}
