//! Graph-level software fault injection — the paper's "easiest but least
//! reliable" FT analysis (Sec. I): faults are applied to the CNN execution
//! graph with no knowledge of the hardware mapping.
//!
//! Two fault kinds from the paper's examples:
//!
//! * **stuck-at-0 at the outputs of operations** — an entire output channel
//!   of an op reads zero ([`GraphFault::StuckZeroChannel`]);
//! * **disconnecting a model component** — a residual connection is dropped
//!   ([`GraphFault::DisconnectResidual`]).
//!
//! Contrast with `nvfi-accel`, where faults live on physical multiplier
//! lanes shared by *all* layers: the graph-level model cannot express that
//! coupling, which is exactly the fidelity gap the paper's platform closes.

use nvfi_tensor::Tensor;

use crate::exec;
use crate::model::QuantModel;

/// A fault applied to the execution graph.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum GraphFault {
    /// Output `channel` of op `op` is stuck at zero.
    StuckZeroChannel {
        /// Op index in the quantized model.
        op: usize,
        /// Output channel.
        channel: usize,
    },
    /// The fused residual input of op `op` is disconnected.
    DisconnectResidual {
        /// Op index in the quantized model.
        op: usize,
    },
}

/// Classifies a batch under graph-level faults.
#[must_use]
pub fn classify_with_faults(
    model: &QuantModel,
    batch: &Tensor<f32>,
    faults: &[GraphFault],
    threads: usize,
) -> Vec<u8> {
    let qin = model.quantize_input(batch);
    exec::forward_with_graph_faults(model, &qin, threads, faults)
        .iter()
        .map(|row| exec::argmax(row))
        .collect()
}

/// Accuracy under graph-level faults.
///
/// # Panics
///
/// Panics if `labels.len() != images.shape().n`.
#[must_use]
pub fn accuracy_with_faults(
    model: &QuantModel,
    images: &Tensor<f32>,
    labels: &[u8],
    faults: &[GraphFault],
    threads: usize,
) -> f64 {
    assert_eq!(images.shape().n, labels.len());
    if labels.is_empty() {
        return 0.0;
    }
    let preds = classify_with_faults(model, images, faults, threads);
    preds.iter().zip(labels).filter(|(p, y)| p == y).count() as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{quantize, QuantConfig};
    use nvfi_dataset::{SynthCifar, SynthCifarConfig};
    use nvfi_nn::fold::fold_resnet;
    use nvfi_nn::resnet::ResNet;

    #[test]
    fn disconnecting_residual_changes_predictions_sometimes() {
        let data = SynthCifar::new(SynthCifarConfig {
            train: 16,
            test: 16,
            ..Default::default()
        })
        .generate();
        let net = ResNet::new(4, &[1, 1], 10, 11);
        let deploy = fold_resnet(&net, 32);
        let q = quantize(&deploy, &data.train.images, &QuantConfig::default()).unwrap();
        // Find the op with a fused add (second conv of the first block).
        let target = q
            .ops
            .iter()
            .position(|o| matches!(&o.kind, crate::QOpKind::Conv(c) if c.fuse_add.is_some()))
            .expect("resnet has a residual op");
        let clean = q.classify(&data.test.images, 1);
        let faulted = classify_with_faults(
            &q,
            &data.test.images,
            &[GraphFault::DisconnectResidual { op: target }],
            1,
        );
        assert_eq!(clean.len(), faulted.len());
        // The logits path differs; predictions may or may not flip, but the
        // computation must stay valid (all labels in range).
        assert!(faulted.iter().all(|&p| p < 10));
    }

    #[test]
    fn accuracy_bounds() {
        let data = SynthCifar::new(SynthCifarConfig {
            train: 16,
            test: 8,
            ..Default::default()
        })
        .generate();
        let net = ResNet::new(4, &[1], 10, 1);
        let deploy = fold_resnet(&net, 32);
        let q = quantize(&deploy, &data.train.images, &QuantConfig::default()).unwrap();
        let acc = accuracy_with_faults(
            &q,
            &data.test.images,
            &data.test.labels,
            &[GraphFault::StuckZeroChannel { op: 0, channel: 1 }],
            1,
        );
        assert!((0.0..=1.0).contains(&acc));
    }
}
