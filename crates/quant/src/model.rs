//! The quantized model representation.

use nvfi_hwnum::Requant;
use nvfi_tensor::{Mat, Shape4, Tensor};

/// Identifier of an intermediate value (same convention as
/// [`nvfi_nn::DeployModel`]: value 0 is the input, op `i` produces `i + 1`).
pub type ValueId = usize;

/// A quantized convolution, optionally fusing a residual add and ReLU —
/// one CONV+SDP pass on the accelerator.
#[derive(Clone, Debug)]
pub struct QConv {
    /// int8 weights, `(K, C, R, S)`.
    pub weight: Tensor<i8>,
    /// i32 bias in the accumulator domain (`s_in * s_w[k]`).
    pub bias: Vec<i32>,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub pad: usize,
    /// ReLU after bias/add.
    pub relu: bool,
    /// Residual value added before the activation, if any.
    pub fuse_add: Option<ValueId>,
    /// Per-output-channel requantizer accumulator -> output i8
    /// (`len == 1` when per-tensor).
    pub requant: Vec<Requant>,
    /// Requantizer applied to the fused residual input (scale
    /// `s_res / s_out`); present iff `fuse_add` is.
    pub add_requant: Option<Requant>,
    /// Real-valued scale of the i8 output activations.
    pub out_scale: f32,
}

impl QConv {
    /// The requantizer for output channel `k`.
    #[inline]
    #[must_use]
    pub fn requant_for(&self, k: usize) -> Requant {
        if self.requant.len() == 1 {
            self.requant[0]
        } else {
            self.requant[k]
        }
    }
}

/// A quantized fully connected head. Logits stay in i32 (argmax needs no
/// further requantization).
#[derive(Clone, Debug)]
pub struct QLinear {
    /// int8 weights, `(out, in)` row-major.
    pub weight: Mat<i8>,
    /// i32 bias in the accumulator domain.
    pub bias: Vec<i32>,
    /// Real-valued scale of the i32 logits.
    pub out_scale: f32,
}

/// The operation performed by a [`QOp`].
#[derive(Clone, Debug)]
pub enum QOpKind {
    /// Convolution (+bias, optional fused add, optional ReLU).
    Conv(QConv),
    /// Max pooling (i8 passthrough; scale unchanged).
    MaxPool {
        /// Window size.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Global average pooling with exact integer rounding (scale unchanged).
    GlobalAvgPool,
    /// Fully connected head producing i32 logits.
    Linear(QLinear),
}

/// One quantized op.
#[derive(Clone, Debug)]
pub struct QOp {
    /// Input value id.
    pub input: ValueId,
    /// Operation.
    pub kind: QOpKind,
    /// Real-valued scale of this op's output.
    pub out_scale: f32,
}

/// A fully quantized network.
#[derive(Clone, Debug)]
pub struct QuantModel {
    /// Input shape with `n == 1`.
    pub input_shape: Shape4,
    /// Scale of the quantized input activations.
    pub input_scale: f32,
    /// Ops in execution order.
    pub ops: Vec<QOp>,
    /// Value id of the logits.
    pub output: ValueId,
}

impl QuantModel {
    /// Quantizes a float input batch to i8 using the model's input scale.
    /// One call is one batch-quantization pass of the
    /// [`crate::batch::quantization_passes`] probe.
    #[must_use]
    pub fn quantize_input(&self, batch: &Tensor<f32>) -> Tensor<i8> {
        let data = crate::batch::quantize_slice(batch.as_slice(), self.input_scale);
        Tensor::from_vec(batch.shape(), data)
    }

    /// Number of convolution ops (including the head when lowered).
    #[must_use]
    pub fn conv_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o.kind, QOpKind::Conv(_)))
            .count()
    }

    /// Shapes (with `n == 1`) of every value.
    ///
    /// # Panics
    ///
    /// Panics on a malformed graph (future references, shape mismatches).
    #[must_use]
    pub fn value_shapes(&self) -> Vec<Shape4> {
        let mut shapes = vec![self.input_shape.with_n(1)];
        for (i, op) in self.ops.iter().enumerate() {
            assert!(op.input <= i, "op {i} reads future value");
            let s = shapes[op.input];
            let out = match &op.kind {
                QOpKind::Conv(c) => {
                    let ws = c.weight.shape();
                    let geom = nvfi_tensor::ConvGeom::new(s, ws.n, ws.h, ws.w, c.stride, c.pad);
                    geom.out_shape()
                }
                QOpKind::MaxPool { k, stride } => {
                    Shape4::new(1, s.c, (s.h - k) / stride + 1, (s.w - k) / stride + 1)
                }
                QOpKind::GlobalAvgPool => Shape4::new(1, s.c, 1, 1),
                QOpKind::Linear(l) => Shape4::new(1, l.weight.rows(), 1, 1),
            };
            shapes.push(out);
        }
        shapes
    }

    /// Total multiply-accumulate count of one inference (conv + linear).
    #[must_use]
    pub fn macs_per_inference(&self) -> u64 {
        let shapes = self.value_shapes();
        let mut macs = 0u64;
        for op in &self.ops {
            match &op.kind {
                QOpKind::Conv(c) => {
                    let ws = c.weight.shape();
                    let geom = nvfi_tensor::ConvGeom::new(
                        shapes[op.input],
                        ws.n,
                        ws.h,
                        ws.w,
                        c.stride,
                        c.pad,
                    );
                    macs += geom.macs_per_image();
                }
                QOpKind::Linear(l) => {
                    macs += (l.weight.rows() * l.weight.cols()) as u64;
                }
                _ => {}
            }
        }
        macs
    }
}
