//! The bit-exact int8 CPU reference executor.
//!
//! This is simultaneously (a) the software inference engine timed for the
//! CPU rows of Table I and (b) the semantic reference the accelerator model
//! must reproduce bit-for-bit in the fault-free case. All post-accumulation
//! arithmetic is funnelled through [`sdp_postprocess`], which the
//! accelerator's SDP model calls too — agreement is by construction.

use nvfi_hwnum::{sat, Requant};
use nvfi_tensor::{conv, pool, ConvGeom, Tensor};

use crate::model::{QOpKind, QuantModel};
use crate::swfi::GraphFault;

/// Post-processing of one accumulator value, exactly as the SDP does it:
/// per-channel requantization, optional rescaled residual add, optional
/// ReLU, saturation to i8.
#[inline]
#[must_use]
pub fn sdp_postprocess(
    acc: i32,
    requant: Requant,
    residual: Option<(i8, Requant)>,
    relu: bool,
) -> i8 {
    let mut v = requant.apply(i64::from(acc));
    if let Some((res, rq)) = residual {
        v += rq.apply(i64::from(res));
    }
    if relu && v < 0 {
        v = 0;
    }
    sat::to_i8(v)
}

/// Integer global average pooling: per-channel wrapping sum then
/// round-half-away-from-zero divide — the PDP's exact arithmetic.
#[must_use]
pub fn pdp_global_avg(input: &Tensor<i8>) -> Tensor<i8> {
    let s = input.shape();
    let sums = pool::global_sum_i8(input);
    let area = (s.h * s.w) as u32;
    Tensor::from_fn(nvfi_tensor::Shape4::new(s.n, s.c, 1, 1), |n, c, _, _| {
        sat::to_i8(i64::from(pool::rounded_div(sums[n * s.c + c], area)))
    })
}

/// Runs the quantized model on an i8 input batch, returning the i32 logits
/// row per image. `threads` shards the convolution GEMMs.
///
/// # Panics
///
/// Panics if the input shape (per image) does not match the model.
#[must_use]
pub fn forward(model: &QuantModel, input: &Tensor<i8>, threads: usize) -> Vec<Vec<i32>> {
    forward_with_graph_faults(model, input, threads, &[])
}

/// [`forward`] with graph-level software faults applied (see
/// [`crate::swfi`]). An empty `faults` slice is the clean reference path.
///
/// # Panics
///
/// Panics if the input shape does not match the model or a fault references
/// a non-existent op/channel.
#[must_use]
pub fn forward_with_graph_faults(
    model: &QuantModel,
    input: &Tensor<i8>,
    threads: usize,
    faults: &[GraphFault],
) -> Vec<Vec<i32>> {
    let bs = input.shape();
    assert_eq!(
        bs.with_n(1),
        model.input_shape.with_n(1),
        "input shape mismatch"
    );
    let batch = bs.n;
    let mut values: Vec<Option<Tensor<i8>>> = vec![None; model.ops.len() + 1];
    values[0] = Some(input.clone());
    let mut logits: Vec<Vec<i32>> = Vec::new();
    for (i, op) in model.ops.iter().enumerate() {
        let x = values[op.input]
            .as_ref()
            .expect("value not computed")
            .clone();
        let out: Tensor<i8> = match &op.kind {
            QOpKind::Conv(c) => {
                let ws = c.weight.shape();
                let geom = ConvGeom::new(x.shape().with_n(1), ws.n, ws.h, ws.w, c.stride, c.pad);
                let disconnect = faults
                    .iter()
                    .any(|f| matches!(f, GraphFault::DisconnectResidual { op } if *op == i));
                let acc = conv::conv2d_i8(&x, &c.weight, &geom, threads);
                let res_t = match (&c.fuse_add, disconnect) {
                    (Some(a), false) => Some(values[*a].as_ref().expect("fused value")),
                    _ => None,
                };
                let os = geom.out_shape().with_n(batch);
                let mut y = Tensor::zeros(os);
                for n in 0..batch {
                    for k in 0..os.c {
                        let rq = c.requant_for(k);
                        for h in 0..os.h {
                            for w in 0..os.w {
                                let a = acc.at(n, k, h, w).wrapping_add(c.bias[k]);
                                let residual = res_t.map(|r| {
                                    (r.at(n, k, h, w), c.add_requant.expect("add requant"))
                                });
                                y.set(n, k, h, w, sdp_postprocess(a, rq, residual, c.relu));
                            }
                        }
                    }
                }
                apply_stuck_zero(&mut y, faults, i);
                y
            }
            QOpKind::MaxPool { k, stride } => {
                let mut y = pool::maxpool2d(&x, *k, *stride);
                apply_stuck_zero(&mut y, faults, i);
                y
            }
            QOpKind::GlobalAvgPool => {
                let mut y = pdp_global_avg(&x);
                apply_stuck_zero(&mut y, faults, i);
                y
            }
            QOpKind::Linear(l) => {
                let xs = x.shape();
                assert_eq!((xs.h, xs.w), (1, 1), "linear expects pooled input");
                for n in 0..batch {
                    let xi = x.image(n);
                    let row: Vec<i32> = (0..l.weight.rows())
                        .map(|o| {
                            let mut a = l.bias[o];
                            for (&w, &xv) in l.weight.row(o).iter().zip(xi) {
                                a = a.wrapping_add(w as i32 * xv as i32);
                            }
                            a
                        })
                        .collect();
                    logits.push(row);
                }
                // Linear is terminal; store a placeholder value.
                Tensor::zeros(nvfi_tensor::Shape4::new(batch, l.weight.rows(), 1, 1))
            }
        };
        values[i + 1] = Some(out);
    }
    assert_eq!(logits.len(), batch, "model has no linear head");
    logits
}

fn apply_stuck_zero(y: &mut Tensor<i8>, faults: &[GraphFault], op_idx: usize) {
    for f in faults {
        if let GraphFault::StuckZeroChannel { op, channel } = f {
            if *op == op_idx {
                let s = y.shape();
                assert!(*channel < s.c, "stuck-at-0 channel {channel} out of range");
                for n in 0..s.n {
                    for h in 0..s.h {
                        for w in 0..s.w {
                            y.set(n, *channel, h, w, 0);
                        }
                    }
                }
            }
        }
    }
}

/// Argmax class prediction for each image of an f32 batch.
#[must_use]
pub fn classify(model: &QuantModel, batch: &Tensor<f32>, threads: usize) -> Vec<u8> {
    let qin = model.quantize_input(batch);
    forward(model, &qin, threads)
        .iter()
        .map(|row| argmax(row))
        .collect()
}

/// Top-1 accuracy on `(images, labels)`.
///
/// # Panics
///
/// Panics if `labels.len() != images.shape().n`.
#[must_use]
pub fn accuracy(model: &QuantModel, images: &Tensor<f32>, labels: &[u8], threads: usize) -> f64 {
    assert_eq!(images.shape().n, labels.len());
    if labels.is_empty() {
        return 0.0;
    }
    let preds = classify(model, images, threads);
    let correct = preds.iter().zip(labels).filter(|(p, y)| p == y).count();
    correct as f64 / labels.len() as f64
}

/// Index of the maximum logit (first wins ties) — the classifier decision.
#[must_use]
pub fn argmax(logits: &[i32]) -> u8 {
    let mut best = (i32::MIN, 0u8);
    for (c, &v) in logits.iter().enumerate() {
        if v > best.0 {
            best = (v, c as u8);
        }
    }
    best.1
}

impl QuantModel {
    /// Convenience wrapper for [`classify`].
    #[must_use]
    pub fn classify(&self, batch: &Tensor<f32>, threads: usize) -> Vec<u8> {
        classify(self, batch, threads)
    }

    /// Convenience wrapper for [`accuracy`].
    #[must_use]
    pub fn accuracy(&self, images: &Tensor<f32>, labels: &[u8], threads: usize) -> f64 {
        accuracy(self, images, labels, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{quantize, QuantConfig};
    use nvfi_dataset::{SynthCifar, SynthCifarConfig};
    use nvfi_nn::fold::fold_resnet;
    use nvfi_nn::resnet::ResNet;

    fn setup() -> (QuantModel, nvfi_dataset::TrainTest) {
        let data = SynthCifar::new(SynthCifarConfig {
            train: 24,
            test: 16,
            ..Default::default()
        })
        .generate();
        let net = ResNet::new(4, &[1, 1], 10, 3);
        let deploy = fold_resnet(&net, 32);
        let q = quantize(&deploy, &data.train.images, &QuantConfig::default()).unwrap();
        (q, data)
    }

    #[test]
    fn sdp_postprocess_semantics() {
        let r = Requant::from_scale(0.5).unwrap();
        assert_eq!(sdp_postprocess(10, r, None, false), 5);
        assert_eq!(sdp_postprocess(-10, r, None, true), 0);
        assert_eq!(sdp_postprocess(1000, r, None, false), 127);
        let add_rq = Requant::from_scale(1.0).unwrap();
        assert_eq!(sdp_postprocess(10, r, Some((3, add_rq)), false), 8);
        assert_eq!(sdp_postprocess(10, r, Some((-100, add_rq)), true), 0);
    }

    #[test]
    fn threads_do_not_change_results() {
        let (q, data) = setup();
        let a = classify(&q, &data.test.images, 1);
        let b = classify(&q, &data.test.images, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn quantized_model_close_to_float_reference() {
        // Train nothing; just check the int8 network agrees with the float
        // deploy graph on most predictions (random weights, so logits are
        // small — agreement should still be high).
        let data = SynthCifar::new(SynthCifarConfig {
            train: 32,
            test: 32,
            ..Default::default()
        })
        .generate();
        let net = ResNet::new(8, &[1, 1], 10, 9);
        let deploy = fold_resnet(&net, 32);
        let q = quantize(&deploy, &data.train.images, &QuantConfig::default()).unwrap();
        let fpred = deploy.classify(&data.test.images);
        let qpred = classify(&q, &data.test.images, 1);
        let agree = fpred.iter().zip(&qpred).filter(|(a, b)| a == b).count();
        assert!(
            agree * 100 >= fpred.len() * 70,
            "only {agree}/{} float/int8 prediction agreement",
            fpred.len()
        );
    }

    #[test]
    fn stuck_zero_channel_changes_output() {
        let (q, data) = setup();
        let qin = q.quantize_input(&data.test.images.slice_image(0));
        let clean = forward(&q, &qin, 1);
        let faulted = forward_with_graph_faults(
            &q,
            &qin,
            1,
            &[GraphFault::StuckZeroChannel { op: 0, channel: 0 }],
        );
        assert_ne!(
            clean, faulted,
            "zeroing a stem channel should change logits"
        );
    }

    #[test]
    fn argmax_first_wins_ties() {
        assert_eq!(argmax(&[3, 7, 7, 1]), 1);
        assert_eq!(argmax(&[-5, -9]), 0);
    }

    #[test]
    fn pdp_global_avg_rounds_exactly() {
        let t = Tensor::from_vec(nvfi_tensor::Shape4::new(1, 1, 2, 2), vec![1i8, 2, 3, 4]);
        // (1+2+3+4)/4 = 2.5 -> 3 (round half away from zero)
        assert_eq!(pdp_global_avg(&t).as_slice(), &[3]);
        let t2 = Tensor::from_vec(nvfi_tensor::Shape4::new(1, 1, 2, 2), vec![-1i8, -2, -3, -4]);
        assert_eq!(pdp_global_avg(&t2).as_slice(), &[-3]);
    }
}
