//! Property-based tests of the quantization pipeline.

use nvfi_hwnum::sat;
use nvfi_nn::{DeployModel, DeployOp, DeployOpKind};
use nvfi_quant::{quantize, QuantConfig};
use nvfi_tensor::{Shape4, Tensor};
use proptest::prelude::*;

/// A single random conv layer as a deploy model.
fn conv_model(c: usize, k: usize, hw: usize, weights: Vec<f32>, bias: Vec<f32>) -> DeployModel {
    DeployModel {
        input_shape: Shape4::new(1, c, hw, hw),
        ops: vec![
            DeployOp {
                input: 0,
                kind: DeployOpKind::Conv {
                    weight: Tensor::from_vec(Shape4::new(k, c, 3, 3), weights),
                    bias,
                    stride: 1,
                    pad: 1,
                    relu: false,
                    fuse_add: None,
                },
            },
            DeployOp {
                input: 1,
                kind: DeployOpKind::GlobalAvgPool,
            },
            DeployOp {
                input: 2,
                kind: DeployOpKind::Linear {
                    weight: nvfi_tensor::Mat::from_vec(2, k, vec![0.5; 2 * k]),
                    bias: vec![0.0, 0.1],
                },
            },
        ],
        output: 3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Symmetric int8 quantization round-trips within half a step.
    #[test]
    fn quantize_dequantize_error_bound(v in -10.0f32..10.0, absmax in 0.5f32..20.0) {
        let v = v.clamp(-absmax, absmax);
        let scale = absmax / 127.0;
        let q = sat::quantize_f32_to_i8(v, scale);
        let back = f32::from(q) * scale;
        prop_assert!((v - back).abs() <= scale / 2.0 + 1e-6,
            "v={} back={} scale={}", v, back, scale);
    }

    /// The quantized conv model tracks the float model: per-logit error is
    /// bounded by a few output quantization steps.
    #[test]
    fn quantized_conv_tracks_float(
        c in 1usize..5,
        k in 1usize..7,
        seed in any::<u64>(),
    ) {
        let hw = 6usize;
        let wlen = k * c * 9;
        let weights: Vec<f32> = (0..wlen)
            .map(|i| ((seed.wrapping_add(i as u64 * 2654435761) % 2000) as f32 / 1000.0) - 1.0)
            .collect();
        let bias: Vec<f32> = (0..k).map(|i| i as f32 * 0.05 - 0.1).collect();
        let model = conv_model(c, k, hw, weights, bias);
        // Calibration images spanning the input range.
        let calib = Tensor::from_fn(Shape4::new(4, c, hw, hw), |n, ci, h, w| {
            ((n * 31 + ci * 17 + h * 5 + w) % 21) as f32 * 0.1 - 1.0
        });
        let q = quantize(&model, &calib, &QuantConfig::default()).unwrap();
        let test = calib.slice_image(1);
        let want = model.forward(&test);
        let got = nvfi_quant::exec::forward(&q, &q.quantize_input(&test), 1);
        // Compare in the logits' real-valued domain.
        let out_scale = q.ops.last().unwrap().out_scale;
        for (idx, (&w, &g)) in want.as_slice().iter().zip(&got[0]).enumerate() {
            let g_real = g as f32 * out_scale;
            // Error budget: input + weight + output rounding across the
            // network; generous but still catches systematic bugs.
            let budget = 0.1 + want.as_slice().iter().fold(0f32, |m, &v| m.max(v.abs())) * 0.1;
            prop_assert!((w - g_real).abs() <= budget,
                "logit {}: float {} vs int8 {}", idx, w, g_real);
        }
    }

    /// Per-channel quantization is at least as accurate as per-tensor on
    /// the weights themselves (reconstruction error).
    #[test]
    fn per_channel_weight_error_not_worse(seed in any::<u64>()) {
        let k = 4usize;
        let per_k = 9usize;
        // Channels with very different magnitudes — the case per-channel
        // scaling exists for.
        let weights: Vec<f32> = (0..k * per_k)
            .map(|i| {
                let ch = i / per_k;
                let mag = 10f32.powi(ch as i32 - 2);
                (((seed.wrapping_add(i as u64 * 97) % 200) as f32 / 100.0) - 1.0) * mag
            })
            .collect();
        let err = |per_channel: bool| -> f32 {
            let mut total = 0f32;
            if per_channel {
                for ch in 0..k {
                    let chunk = &weights[ch * per_k..(ch + 1) * per_k];
                    let absmax = chunk.iter().fold(0f32, |m, &v| m.max(v.abs())).max(1e-9);
                    let scale = absmax / 127.0;
                    for &v in chunk {
                        let q = sat::quantize_f32_to_i8(v, scale);
                        total += (v - f32::from(q) * scale).abs();
                    }
                }
            } else {
                let absmax = weights.iter().fold(0f32, |m, &v| m.max(v.abs())).max(1e-9);
                let scale = absmax / 127.0;
                for &v in &weights {
                    let q = sat::quantize_f32_to_i8(v, scale);
                    total += (v - f32::from(q) * scale).abs();
                }
            }
            total
        };
        prop_assert!(err(true) <= err(false) + 1e-6);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Batch quantization distributes over concatenation:
    /// `quantize(concat(a, b)) == concat(quantize(a), quantize(b))` for the
    /// input scales campaigns use. This is what makes the once-per-campaign
    /// quantization pass shard-order-invariant — a `QuantizedEvalSet` built
    /// up front is bit-identical to quantizing every device shard (or
    /// mini-batch) separately, wherever the shard boundaries fall.
    #[test]
    fn batch_quantization_distributes_over_concat(
        a in proptest::collection::vec(-4.0f32..4.0, 0..96),
        b in proptest::collection::vec(-4.0f32..4.0, 0..96),
        // Campaign input scales come from absmax/127 calibration of roughly
        // [-1, 1] images, i.e. small positive reals.
        scale in 0.001f32..0.2,
    ) {
        let whole: Vec<f32> = a.iter().chain(b.iter()).copied().collect();
        let q_whole = nvfi_quant::batch::quantize_slice(&whole, scale);
        let mut q_parts = nvfi_quant::batch::quantize_slice(&a, scale);
        q_parts.extend(nvfi_quant::batch::quantize_slice(&b, scale));
        prop_assert_eq!(q_whole, q_parts);
    }

    /// The batch helper agrees elementwise with the scalar quantizer it is
    /// hoisting (so routing every f32 wrapper through it changed nothing).
    #[test]
    fn batch_helper_matches_scalar_quantizer(
        xs in proptest::collection::vec(-300.0f32..300.0, 1..64),
        scale in 0.001f32..2.0,
    ) {
        let q = nvfi_quant::batch::quantize_slice(&xs, scale);
        for (x, got) in xs.iter().zip(&q) {
            prop_assert_eq!(*got, sat::quantize_f32_to_i8(*x, scale));
        }
    }
}
