//! Shared fixtures for the benchmark harness.
//!
//! The binaries in `src/bin/` regenerate the paper's tables and figures
//! (`table1`, `fig2`, `fig3`, `speedup`, or everything via `all`); the
//! criterion benches in `benches/` measure the components those experiments
//! are built from. Fixtures here are deliberately small so `cargo bench`
//! finishes in minutes on one core — the *experiments* use the full-size
//! configuration from `ExperimentConfig::from_env()`.

use nvfi_dataset::{SynthCifar, SynthCifarConfig, TrainTest};
use nvfi_nn::fold::fold_resnet;
use nvfi_nn::resnet::ResNet;
use nvfi_quant::{quantize, QuantConfig, QuantModel};

/// A small quantized ResNet (width 4, one block per stage pair) and data,
/// deterministic, untrained — enough for timing work.
#[must_use]
pub fn small_fixture() -> (QuantModel, TrainTest) {
    let data = SynthCifar::new(SynthCifarConfig {
        train: 16,
        test: 16,
        ..Default::default()
    })
    .generate();
    let net = ResNet::new(4, &[1, 1], 10, 42);
    let deploy = fold_resnet(&net, 32);
    let q =
        quantize(&deploy, &data.train.images, &QuantConfig::default()).expect("fixture quantizes");
    (q, data)
}

/// A medium fixture: the default Table I width (16) full ResNet-18.
#[must_use]
pub fn medium_fixture() -> (QuantModel, TrainTest) {
    let data = SynthCifar::new(SynthCifarConfig {
        train: 8,
        test: 8,
        ..Default::default()
    })
    .generate();
    let q = nvfi::experiments::untrained_quant_model(16, 42);
    (q, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let (q, data) = small_fixture();
        assert!(q.macs_per_inference() > 0);
        assert_eq!(data.test.len(), 16);
        let (qm, _) = medium_fixture();
        assert!(qm.macs_per_inference() > q.macs_per_inference());
    }
}
