//! Shared fixtures for the benchmark harness.
//!
//! The binaries in `src/bin/` regenerate the paper's tables and figures
//! (`table1`, `fig2`, `fig3`, `speedup`, or everything via `all`); the
//! criterion benches in `benches/` measure the components those experiments
//! are built from. Fixtures here are deliberately small so `cargo bench`
//! finishes in minutes on one core — the *experiments* use the full-size
//! configuration from `ExperimentConfig::from_env()`.

#![forbid(unsafe_code)]

use nvfi_dataset::{SynthCifar, SynthCifarConfig, TrainTest};
use nvfi_nn::fold::fold_resnet;
use nvfi_nn::resnet::ResNet;
use nvfi_quant::{quantize, QuantConfig, QuantModel};

/// A small quantized ResNet (width 4, one block per stage pair) and data,
/// deterministic, untrained — enough for timing work.
#[must_use]
pub fn small_fixture() -> (QuantModel, TrainTest) {
    let data = SynthCifar::new(SynthCifarConfig {
        train: 16,
        test: 16,
        ..Default::default()
    })
    .generate();
    let net = ResNet::new(4, &[1, 1], 10, 42);
    let deploy = fold_resnet(&net, 32);
    let q =
        quantize(&deploy, &data.train.images, &QuantConfig::default()).expect("fixture quantizes");
    (q, data)
}

/// A medium fixture: the default Table I width (16) full ResNet-18.
#[must_use]
pub fn medium_fixture() -> (QuantModel, TrainTest) {
    let data = SynthCifar::new(SynthCifarConfig {
        train: 8,
        test: 8,
        ..Default::default()
    })
    .generate();
    let q = nvfi::experiments::untrained_quant_model(16, 42);
    (q, data)
}

/// The distributed [`nvfi::experiments::CampaignRunner`] of the experiment
/// binaries: schedules every campaign through the `nvfi-dist` coordinator,
/// honouring [`nvfi::experiments::ExperimentConfig::workers`]
/// (`NVFI_WORKERS`) and
/// [`nvfi::experiments::ExperimentConfig::dist_addr`] (`NVFI_DIST_ADDR`).
///
/// Two fleet shapes:
///
/// * `dist_addr` unset — `workers` **local** processes are raised by
///   re-executing the current binary, so the binary's `main` must start
///   with [`nvfi_dist::worker::maybe_serve`] (the experiment binaries do);
/// * `dist_addr` set — the coordinator binds there and waits for all
///   `workers` workers to attach **remotely** (`nvfi_worker <addr>` on
///   each host); nothing is spawned locally.
pub struct DistRunner {
    fleet: nvfi_dist::FleetSpec,
    /// Workers attach remotely instead of being spawned (`dist_addr` set).
    external: bool,
}

impl DistRunner {
    /// Builds the runner from the experiment configuration's wire knobs.
    #[must_use]
    pub fn from_config(cfg: &nvfi::experiments::ExperimentConfig) -> Self {
        // NVFI_TASK_TIMEOUT (seconds; unset = wait forever) bounds shard
        // silence in both fleet shapes — heartbeating workers never trip it.
        let task_timeout = cfg.task_timeout.map(std::time::Duration::from_secs);
        // NVFI_AUDIT_RATE / NVFI_QUARANTINE plumb the result-integrity
        // layer: audit sampling of completed shards and draining of
        // convicted workers (the baseline shard is always audited).
        match &cfg.dist_addr {
            Some(addr) => DistRunner {
                fleet: nvfi_dist::FleetSpec {
                    listen: Some(addr.clone()),
                    external_workers: cfg.workers,
                    task_timeout,
                    audit_rate: cfg.audit_rate,
                    quarantine: cfg.quarantine,
                    ..nvfi_dist::FleetSpec::self_exec()
                },
                external: true,
            },
            None => DistRunner {
                fleet: nvfi_dist::FleetSpec {
                    task_timeout,
                    audit_rate: cfg.audit_rate,
                    quarantine: cfg.quarantine,
                    ..nvfi_dist::FleetSpec::self_exec()
                },
                external: false,
            },
        }
    }
}

impl nvfi::experiments::CampaignRunner<nvfi_dist::DistError> for DistRunner {
    fn run_campaign(
        &mut self,
        model: &QuantModel,
        config: nvfi::PlatformConfig,
        spec: &nvfi::campaign::CampaignSpec,
        eval: &nvfi_dataset::Dataset,
    ) -> Result<nvfi::campaign::CampaignResult, nvfi_dist::DistError> {
        let spec = if self.external {
            // All workers are remote attachments; spawn none locally.
            nvfi::campaign::CampaignSpec {
                workers: 0,
                ..spec.clone()
            }
        } else {
            spec.clone()
        };
        nvfi_dist::run_campaign(model, config, &spec, eval, &self.fleet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let (q, data) = small_fixture();
        assert!(q.macs_per_inference() > 0);
        assert_eq!(data.test.len(), 16);
        let (qm, _) = medium_fixture();
        assert!(qm.macs_per_inference() > q.macs_per_inference());
    }
}
