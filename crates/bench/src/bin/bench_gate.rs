//! CI bench-regression gate: compares a fresh `cargo bench` run against the
//! committed baselines and fails (exit 1) on a >`max_regression_pct`
//! slowdown of any tracked scenario.
//!
//! ```text
//! bench_gate <BENCH_inference_ci.json> <BENCH_inference.json>
//! ```
//!
//! The first file is the criterion shim's `CRITERION_JSON` output: one JSON
//! object per line, `{"id": "...", "mean_ns": N, "median_ns": N}`. The
//! second is the committed `BENCH_inference.json`, whose `ci_gate` section
//! defines the contract:
//!
//! ```json
//! "ci_gate": {
//!   "max_regression_pct": 25,
//!   "normalize_by": "table1_inference/cpu_int8_1thread_w16",
//!   "reference_max_regression_pct": 300,
//!   "tracked_mean_ms": { "<bench id>": <baseline mean ms>, ... }
//! }
//! ```
//!
//! Raw wall-clock baselines are host-specific, and CI runners are not the
//! machine the baselines were recorded on. When `normalize_by` names a
//! scenario, every mean (fresh and baseline) is divided by that scenario's
//! mean from its *own* run first — the compared quantity is then "time
//! relative to the CPU reference executor on the same host", which cancels
//! the host's absolute speed while still catching regressions that slow one
//! path relative to the rest. Omit `normalize_by` to gate on raw means.
//!
//! Normalization is blind to regressions *of the reference itself* (its
//! normalized ratio is identically 1), and a slower reference rescales —
//! masks — everyone else's ratio. So when the `normalize_by` scenario is
//! also tracked, its row is gated on **raw** time instead, against the
//! looser `reference_max_regression_pct` bound (default 300%, i.e. 4x):
//! wide enough for a slower CI runner, tight enough that a catastrophic
//! uniform slowdown — the one shape normalization cannot see — still fails
//! the job.
//!
//! A tracked scenario missing from the fresh run also fails the gate (a
//! silently dropped bench must not pass as "no regression").

use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 3 {
        eprintln!("usage: bench_gate <fresh CRITERION_JSON lines> <committed baseline json>");
        return ExitCode::FAILURE;
    }
    match run(&args[1], &args[2]) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses the shim's JSON-lines output into `id -> mean_ms`.
fn parse_fresh(path: &str) -> Result<HashMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut means = HashMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let row = serde_json::from_str(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        let id = row
            .get("id")
            .and_then(serde_json::Value::as_str)
            .ok_or_else(|| format!("{path}:{}: missing `id`", lineno + 1))?;
        let mean_ns = row
            .get("mean_ns")
            .and_then(serde_json::Value::as_f64)
            .ok_or_else(|| format!("{path}:{}: missing `mean_ns`", lineno + 1))?;
        // Later lines win: re-running a bench appends, and the newest
        // measurement is the one the gate should judge.
        means.insert(id.to_string(), mean_ns / 1e6);
    }
    Ok(means)
}

struct Gate {
    max_regression_pct: f64,
    normalize_by: Option<String>,
    reference_max_regression_pct: f64,
    tracked_mean_ms: Vec<(String, f64)>,
}

/// Reads the `ci_gate` section of the committed baseline file.
fn parse_baseline(path: &str) -> Result<Gate, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
    let gate = doc
        .get("ci_gate")
        .ok_or_else(|| format!("{path}: no `ci_gate` section"))?;
    let max_regression_pct = gate
        .get("max_regression_pct")
        .and_then(serde_json::Value::as_f64)
        .ok_or_else(|| format!("{path}: ci_gate.max_regression_pct missing"))?;
    let normalize_by = gate
        .get("normalize_by")
        .and_then(serde_json::Value::as_str)
        .map(str::to_string);
    let reference_max_regression_pct = gate
        .get("reference_max_regression_pct")
        .and_then(serde_json::Value::as_f64)
        .unwrap_or(300.0);
    let tracked = gate
        .get("tracked_mean_ms")
        .and_then(serde_json::Value::as_object)
        .ok_or_else(|| format!("{path}: ci_gate.tracked_mean_ms missing"))?;
    let mut tracked_mean_ms = Vec::new();
    for (id, v) in tracked {
        let ms = v
            .as_f64()
            .ok_or_else(|| format!("{path}: tracked_mean_ms[{id}] is not a number"))?;
        tracked_mean_ms.push((id.clone(), ms));
    }
    if tracked_mean_ms.is_empty() {
        return Err(format!("{path}: ci_gate.tracked_mean_ms is empty"));
    }
    Ok(Gate {
        max_regression_pct,
        normalize_by,
        reference_max_regression_pct,
        tracked_mean_ms,
    })
}

fn run(fresh_path: &str, baseline_path: &str) -> Result<bool, String> {
    let fresh = parse_fresh(fresh_path)?;
    let gate = parse_baseline(baseline_path)?;

    // Normalization denominators, each from its own run.
    let (fresh_ref, base_ref) = match &gate.normalize_by {
        Some(id) => {
            let f = *fresh
                .get(id)
                .ok_or_else(|| format!("normalize_by scenario `{id}` missing from {fresh_path}"))?;
            let b = gate
                .tracked_mean_ms
                .iter()
                .find(|(tid, _)| tid == id)
                .map(|(_, ms)| *ms)
                .ok_or_else(|| {
                    format!("normalize_by scenario `{id}` missing from tracked_mean_ms")
                })?;
            (f, b)
        }
        None => (1.0, 1.0),
    };

    let unit = if gate.normalize_by.is_some() {
        "rel"
    } else {
        "ms"
    };
    println!(
        "bench gate: max regression {:.0}%{}",
        gate.max_regression_pct,
        gate.normalize_by
            .as_deref()
            .map(|id| format!(", normalized by `{id}`"))
            .unwrap_or_default()
    );
    let mut ok = true;
    for (id, base_ms) in &gate.tracked_mean_ms {
        let Some(&fresh_ms) = fresh.get(id) else {
            println!("  FAIL {id:<44} missing from the fresh run");
            ok = false;
            continue;
        };
        // The reference scenario's normalized ratio is identically 1 (and a
        // slower reference would mask everyone else), so gate it on raw
        // time against the looser host-tolerant bound instead.
        let is_reference = gate.normalize_by.as_deref() == Some(id);
        let (base, new, unit, limit) = if is_reference {
            (*base_ms, fresh_ms, "ms", gate.reference_max_regression_pct)
        } else {
            (
                base_ms / base_ref,
                fresh_ms / fresh_ref,
                unit,
                gate.max_regression_pct,
            )
        };
        let delta_pct = (new - base) / base * 100.0;
        let fail = delta_pct > limit;
        println!(
            "  {} {id:<44} base {base:>10.4} {unit}   now {new:>10.4} {unit}   {delta_pct:>+7.1}% \
             (limit +{limit:.0}%{})",
            if fail { "FAIL" } else { "  ok" },
            if is_reference { ", raw reference" } else { "" },
        );
        ok &= !fail;
    }
    if !ok {
        eprintln!("bench gate: tracked scenario regressed beyond the threshold");
    }
    Ok(ok)
}
