//! Regenerates Fig. 3 (8x8 accuracy-drop heat maps, one permanently faulted
//! multiplier, injected values 0/+1/-1).
//!
//! Usage: `cargo run -p nvfi-bench --release --bin fig3`
//! Environment overrides: see `ExperimentConfig::from_env` (NVFI_*).

use nvfi::experiments::{run_fig3, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::from_env();
    let result = run_fig3(&cfg).expect("fig3 experiment failed");
    print!("{result}");
    println!(
        "baseline int8 accuracy {:.1}% | {:.1}s wall",
        result.baseline_pct, result.wall_seconds
    );
    result.save(&cfg.out_dir).expect("could not write results");
    eprintln!("wrote {}/fig3.{{csv,json}}", cfg.out_dir.display());
}
