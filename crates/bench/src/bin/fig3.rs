//! Regenerates Fig. 3 (8x8 accuracy-drop heat maps, one permanently faulted
//! multiplier, injected values 0/+1/-1).
//!
//! Usage: `cargo run -p nvfi-bench --release --bin fig3`
//! Environment overrides: see `ExperimentConfig::from_env` (NVFI_*).
//! With `NVFI_WORKERS` > 0 the campaigns run over `nvfi-dist` worker
//! processes (local self-exec, or attaching to `NVFI_DIST_ADDR` from other
//! hosts) — records are bit-identical to the in-process run.

use nvfi::experiments::{run_fig3, run_fig3_with, ExperimentConfig};
use nvfi_bench::DistRunner;

fn main() {
    // Self-exec hook: a copy of this binary spawned as a dist worker serves
    // its session here and never runs the experiment below.
    nvfi_dist::worker::maybe_serve();
    let cfg = ExperimentConfig::from_env();
    let result = if cfg.workers > 0 {
        run_fig3_with(&cfg, DistRunner::from_config(&cfg)).expect("fig3 experiment failed")
    } else {
        run_fig3(&cfg).expect("fig3 experiment failed")
    };
    print!("{result}");
    println!(
        "baseline int8 accuracy {:.1}% | {:.1}s wall",
        result.baseline_pct, result.wall_seconds
    );
    result.save(&cfg.out_dir).expect("could not write results");
    eprintln!("wrote {}/fig3.{{csv,json}}", cfg.out_dir.display());
}
