//! CI trace-validation gate: checks that a chrome-trace JSON file exported
//! by `NVFI_TRACE=path.json` is well-formed and contains the span taxonomy
//! a distributed campaign must produce.
//!
//! ```text
//! trace_check <trace.json>
//! ```
//!
//! Validates, failing (exit 1) on the first violation:
//!
//! * the file parses as a JSON array of event objects;
//! * every event has a string `name`, a `ph` of `"X"` (with a `dur`) or
//!   `"i"`, and numeric `pid`/`tid`/`ts`;
//! * every span of the dispatch pipeline is present — `server.dispatch`,
//!   `shard.queue_wait`, `shard.ship`, `shard.execute`, `shard.merge` from
//!   the coordinator, `worker.execute` from the shipped span summaries;
//! * `worker.execute` spans appear on at least two distinct lanes (`tid`s)
//!   — proof that both workers of the drill actually ran shards;
//! * at least one `audit.*` event was recorded (the baseline shard is
//!   always audited).

use std::collections::BTreeSet;
use std::process::ExitCode;

use serde_json::Value;

/// Spans the coordinator and the shipped worker summaries must produce in
/// any distributed campaign.
const REQUIRED_SPANS: &[&str] = &[
    "server.dispatch",
    "shard.queue_wait",
    "shard.ship",
    "shard.execute",
    "shard.merge",
    "worker.execute",
];

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: trace_check <trace.json>");
        return ExitCode::FAILURE;
    };
    match run(&path) {
        Ok(summary) => {
            println!("trace_check: {path}: {summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace_check: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read: {e}"))?;
    let root = serde_json::from_str(&text).map_err(|e| format!("parse: {e}"))?;
    let Value::Array(events) = root else {
        return Err("top level is not a JSON array".into());
    };
    if events.is_empty() {
        return Err("trace is empty".into());
    }

    let mut names: BTreeSet<String> = BTreeSet::new();
    let mut worker_lanes: BTreeSet<u64> = BTreeSet::new();
    let mut audit_events = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing string `name`"))?;
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i} ({name}): missing string `ph`"))?;
        for field in ["pid", "tid", "ts"] {
            ev.get(field)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("event {i} ({name}): missing numeric `{field}`"))?;
        }
        match ph {
            "X" => {
                ev.get("dur")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i} ({name}): span without `dur`"))?;
            }
            "i" => {}
            other => return Err(format!("event {i} ({name}): unexpected ph {other:?}")),
        }
        if name == "worker.execute" {
            let lane = ev.get("tid").and_then(Value::as_f64).unwrap_or(0.0);
            worker_lanes.insert(lane as u64);
        }
        if name.starts_with("audit.") {
            audit_events += 1;
        }
        names.insert(name.to_string());
    }

    for required in REQUIRED_SPANS {
        if !names.contains(*required) {
            return Err(format!(
                "required span `{required}` missing (saw: {names:?})"
            ));
        }
    }
    if worker_lanes.len() < 2 {
        return Err(format!(
            "worker.execute spans on {} lane(s); a 2-worker drill must show >=2",
            worker_lanes.len()
        ));
    }
    if audit_events == 0 {
        return Err("no audit.* events (the baseline shard is always audited)".into());
    }
    Ok(format!(
        "{} events, {} span names, {} worker lanes, {} audit events",
        events.len(),
        names.len(),
        worker_lanes.len(),
        audit_events
    ))
}
