//! Regenerates Table I (inference latency + synthesis utilization).
//!
//! Usage: `cargo run -p nvfi-bench --release --bin table1`
//! Environment overrides: see `ExperimentConfig::from_env` (NVFI_*).

use nvfi::experiments::{run_table1, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::from_env();
    let result = run_table1(&cfg).expect("table1 experiment failed");
    print!("{result}");
    result.save(&cfg.out_dir).expect("could not write results");
    eprintln!("wrote {}/table1.{{csv,json}}", cfg.out_dir.display());
}
