//! Regenerates Fig. 2 (accuracy drop vs number of affected multipliers,
//! injected values 0/+1/-1, random multiplier subsets).
//!
//! Usage: `cargo run -p nvfi-bench --release --bin fig2`
//! Environment overrides: see `ExperimentConfig::from_env` (NVFI_*).
//! With `NVFI_WORKERS` > 0 the campaigns run over `nvfi-dist` worker
//! processes (local self-exec, or attaching to `NVFI_DIST_ADDR` from other
//! hosts) — records are bit-identical to the in-process run.

use nvfi::experiments::{run_fig2, run_fig2_with, ExperimentConfig};
use nvfi_bench::DistRunner;

fn main() {
    // Self-exec hook: a copy of this binary spawned as a dist worker serves
    // its session here and never runs the experiment below.
    nvfi_dist::worker::maybe_serve();
    let cfg = ExperimentConfig::from_env();
    let result = if cfg.workers > 0 {
        run_fig2_with(&cfg, DistRunner::from_config(&cfg)).expect("fig2 experiment failed")
    } else {
        run_fig2(&cfg).expect("fig2 experiment failed")
    };
    print!("{result}");
    println!(
        "baseline int8 accuracy {:.1}% | {} fault injections | {:.1}s wall",
        result.baseline_pct, result.total_fis, result.wall_seconds
    );
    result.save(&cfg.out_dir).expect("could not write results");
    eprintln!("wrote {}/fig2.{{csv,json}}", cfg.out_dir.display());
}
