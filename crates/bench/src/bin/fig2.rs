//! Regenerates Fig. 2 (accuracy drop vs number of affected multipliers,
//! injected values 0/+1/-1, random multiplier subsets).
//!
//! Usage: `cargo run -p nvfi-bench --release --bin fig2`
//! Environment overrides: see `ExperimentConfig::from_env` (NVFI_*).

use nvfi::experiments::{run_fig2, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::from_env();
    let result = run_fig2(&cfg).expect("fig2 experiment failed");
    print!("{result}");
    println!(
        "baseline int8 accuracy {:.1}% | {} fault injections | {:.1}s wall",
        result.baseline_pct, result.total_fis, result.wall_seconds
    );
    result.save(&cfg.out_dir).expect("could not write results");
    eprintln!("wrote {}/fig2.{{csv,json}}", cfg.out_dir.display());
}
