//! Strict plan verification over the benchmark fixture models.
//!
//! Compiles the small (fig2-scale) and medium (fig3/Table-I-scale)
//! fixtures, runs [`nvfi_compiler::verify::verify_plan`] over each compiled
//! [`nvfi_compiler::ExecutionPlan`], and prints every diagnostic. With `-D`
//! (or `--deny`) any diagnostic is fatal — the CI gate that keeps the
//! checked-in compiler honest against its own invariant catalogue.
//!
//! ```text
//! cargo run --release -p nvfi-bench --bin verify -- -D
//! ```

use std::process::ExitCode;

use nvfi::PlatformConfig;
use nvfi_bench::{medium_fixture, small_fixture};
use nvfi_compiler::verify_plan;
use nvfi_quant::QuantModel;

fn verify_model(name: &str, model: &QuantModel) -> usize {
    let dram = PlatformConfig::default().accel.dram_capacity;
    let plan = match nvfi_compiler::compile(model, dram) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{name}: compile failed: {e}");
            return 1;
        }
    };
    let diags = verify_plan(&plan);
    for d in &diags {
        eprintln!("{name}: {d}");
    }
    println!(
        "{name}: {} ops, {} diagnostic(s)",
        plan.ops.len(),
        diags.len()
    );
    diags.len()
}

fn main() -> ExitCode {
    let deny = std::env::args().any(|a| a == "-D" || a == "--deny");
    let mut total = 0;
    let (small, _) = small_fixture();
    total += verify_model("small_fixture", &small);
    let (medium, _) = medium_fixture();
    total += verify_model("medium_fixture", &medium);
    if total == 0 {
        println!("verify: all fixture plans clean");
        ExitCode::SUCCESS
    } else if deny {
        eprintln!("verify: {total} diagnostic(s) (denied with -D)");
        ExitCode::FAILURE
    } else {
        eprintln!("verify: {total} diagnostic(s) (warnings; pass -D to deny)");
        ExitCode::SUCCESS
    }
}
