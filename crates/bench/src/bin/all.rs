//! Runs every experiment in order (Table I, Fig. 2, Fig. 3, speedup) and
//! writes all result files — the one-shot reproduction driver.
//!
//! Usage: `cargo run -p nvfi-bench --release --bin all`

use nvfi::experiments::{run_fig2, run_fig3, run_speedup, run_table1, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::from_env();
    eprintln!("== Table I ==");
    let t1 = run_table1(&cfg).expect("table1 failed");
    print!("{t1}");
    t1.save(&cfg.out_dir).expect("write table1");

    eprintln!("== Fig. 2 ==");
    let f2 = run_fig2(&cfg).expect("fig2 failed");
    print!("{f2}");
    f2.save(&cfg.out_dir).expect("write fig2");

    eprintln!("== Fig. 3 ==");
    let f3 = run_fig3(&cfg).expect("fig3 failed");
    print!("{f3}");
    f3.save(&cfg.out_dir).expect("write fig3");

    eprintln!("== Speedup ==");
    let sp = run_speedup(&cfg).expect("speedup failed");
    print!("{sp}");
    sp.save(&cfg.out_dir).expect("write speedup");

    eprintln!("all results under {}", cfg.out_dir.display());
}
