//! Runs every experiment in order (Table I, Fig. 2, Fig. 3, speedup) and
//! writes all result files — the one-shot reproduction driver.
//!
//! Usage: `cargo run -p nvfi-bench --release --bin all`

use nvfi::experiments::{
    run_fig2, run_fig2_with, run_fig3, run_fig3_with, run_speedup, run_table1, ExperimentConfig,
};
use nvfi_bench::DistRunner;

fn main() {
    // Self-exec hook: a copy of this binary spawned as a dist worker serves
    // its session here and never runs the experiments below.
    nvfi_dist::worker::maybe_serve();
    let cfg = ExperimentConfig::from_env();
    eprintln!("== Table I ==");
    let t1 = run_table1(&cfg).expect("table1 failed");
    print!("{t1}");
    t1.save(&cfg.out_dir).expect("write table1");

    eprintln!("== Fig. 2 ==");
    let f2 = if cfg.workers > 0 {
        run_fig2_with(&cfg, DistRunner::from_config(&cfg)).expect("fig2 failed")
    } else {
        run_fig2(&cfg).expect("fig2 failed")
    };
    print!("{f2}");
    f2.save(&cfg.out_dir).expect("write fig2");

    eprintln!("== Fig. 3 ==");
    let f3 = if cfg.workers > 0 {
        run_fig3_with(&cfg, DistRunner::from_config(&cfg)).expect("fig3 failed")
    } else {
        run_fig3(&cfg).expect("fig3 failed")
    };
    print!("{f3}");
    f3.save(&cfg.out_dir).expect("write fig3");

    eprintln!("== Speedup ==");
    let sp = run_speedup(&cfg).expect("speedup failed");
    print!("{sp}");
    sp.save(&cfg.out_dir).expect("write speedup");

    eprintln!("all results under {}", cfg.out_dir.display());
}
