//! Regenerates the Sec. IV speedup comparison: emulated-FPGA throughput vs
//! cycle-driven software simulation (SAFFIRA-style) vs graph-level FI.
//!
//! Usage: `cargo run -p nvfi-bench --release --bin speedup`
//! Environment overrides: see `ExperimentConfig::from_env` (NVFI_*).

use nvfi::experiments::{run_speedup, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::from_env();
    let result = run_speedup(&cfg).expect("speedup experiment failed");
    print!("{result}");
    result.save(&cfg.out_dir).expect("could not write results");
    eprintln!("wrote {}/speedup.json", cfg.out_dir.display());
}
