//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * `Fast` vs `Exact` fault execution (the reason campaigns are feasible);
//! * idle-lane policy (ZeroFed vs Gated) — functional policy, identical
//!   cost expected;
//! * im2col+GEMM vs naive direct convolution;
//! * per-channel vs per-tensor weight quantization (executor cost).

use criterion::{criterion_group, criterion_main, Criterion};
use nvfi::{EmulationPlatform, PlatformConfig};
use nvfi_accel::{AccelConfig, ExecMode, FaultConfig, FaultKind, IdleLanePolicy};
use nvfi_bench::small_fixture;
use nvfi_compiler::regmap::MultId;
use nvfi_nn::fold::fold_resnet;
use nvfi_nn::resnet::ResNet;
use nvfi_quant::{quantize, QuantConfig};
use nvfi_tensor::{conv, ConvGeom, Shape4, Tensor};

fn bench_fast_vs_exact(c: &mut Criterion) {
    let (q, data) = small_fixture();
    let img = data.test.images.slice_image(0);
    let fault = FaultConfig::new(vec![MultId::new(0, 0)], FaultKind::StuckAtZero);
    let mut g = c.benchmark_group("ablation_fi_exec_mode");
    g.sample_size(10);
    for (label, mode) in [("fast", ExecMode::Fast), ("exact", ExecMode::Exact)] {
        let cfg = PlatformConfig {
            accel: AccelConfig {
                mode,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut platform = EmulationPlatform::assemble(&q, cfg).unwrap();
        platform.inject(&fault);
        g.bench_function(label, |b| b.iter(|| platform.run(&img).unwrap()));
    }
    g.finish();
}

fn bench_idle_lane_policy(c: &mut Criterion) {
    let (q, data) = small_fixture();
    let img = data.test.images.slice_image(0);
    let mut g = c.benchmark_group("ablation_idle_lanes");
    g.sample_size(10);
    for (label, idle) in [
        ("zero_fed", IdleLanePolicy::ZeroFed),
        ("gated", IdleLanePolicy::Gated),
    ] {
        let cfg = PlatformConfig {
            accel: AccelConfig {
                idle_lanes: idle,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut platform = EmulationPlatform::assemble(&q, cfg).unwrap();
        platform.inject(&FaultConfig::new(
            vec![MultId::new(1, 1)],
            FaultKind::Constant(1),
        ));
        g.bench_function(label, |b| b.iter(|| platform.run(&img).unwrap()));
    }
    g.finish();
}

fn bench_conv_kernels(c: &mut Criterion) {
    let input = Tensor::from_fn(Shape4::new(1, 16, 16, 16), |_, ch, h, w| {
        ((ch * 7 + h * 3 + w) % 251) as i8
    });
    let geom = ConvGeom::new(input.shape(), 16, 3, 3, 1, 1);
    let weights = Tensor::from_fn(geom.weight_shape(), |k, ch, r, s| {
        ((k + ch + r + s) % 17) as i8
    });
    let mut g = c.benchmark_group("ablation_conv_kernel");
    g.sample_size(10);
    g.bench_function("im2col_gemm", |b| {
        b.iter(|| conv::conv2d_i8(&input, &weights, &geom, 1))
    });
    g.bench_function("naive_direct", |b| {
        b.iter(|| conv::conv2d_i8_naive(&input, &weights, &geom))
    });
    g.finish();
}

fn bench_quant_granularity(c: &mut Criterion) {
    let data = nvfi_dataset::SynthCifar::new(nvfi_dataset::SynthCifarConfig {
        train: 8,
        test: 4,
        ..Default::default()
    })
    .generate();
    let net = ResNet::new(4, &[1, 1], 10, 42);
    let deploy = fold_resnet(&net, 32);
    let mut g = c.benchmark_group("ablation_quant_granularity");
    g.sample_size(10);
    for (label, per_channel) in [("per_channel", true), ("per_tensor", false)] {
        let q = quantize(
            &deploy,
            &data.train.images,
            &QuantConfig {
                per_channel,
                calib_chunk: 8,
            },
        )
        .unwrap();
        let input = q.quantize_input(&data.test.images.slice_image(0));
        g.bench_function(label, |b| {
            b.iter(|| nvfi_quant::exec::forward(&q, &input, 1))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fast_vs_exact,
    bench_idle_lane_policy,
    bench_conv_kernels,
    bench_quant_granularity
);
criterion_main!(benches);
