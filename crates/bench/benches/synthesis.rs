//! Criterion bench behind Table I's synthesis rows: building the
//! structural netlists and the cost table. (Cheap — this guards against
//! the cost model accidentally becoming expensive as variants grow.)

use criterion::{criterion_group, criterion_main, Criterion};
use nvfi_synth::designs::{full_design, FiVariant, MultMapping};
use nvfi_synth::table1_synthesis_rows;

fn bench_netlist_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("synthesis");
    g.bench_function("full_design_variable_fi", |b| {
        b.iter(|| full_design(FiVariant::Variable, MultMapping::Lut))
    });
    g.bench_function("table1_rows", |b| b.iter(table1_synthesis_rows));
    g.finish();
}

criterion_group!(benches, bench_netlist_construction);
criterion_main!(benches);
