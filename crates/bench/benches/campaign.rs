//! Criterion bench behind Fig. 2 / Fig. 3: the cost of one fault-injection
//! evaluation (program registers, run the evaluation set, read accuracy)
//! and of fault (re)programming alone.

use criterion::{criterion_group, criterion_main, Criterion};
use nvfi::{EmulationPlatform, PlatformConfig};
use nvfi_accel::{FaultConfig, FaultKind};
use nvfi_bench::small_fixture;
use nvfi_compiler::regmap::MultId;

fn bench_single_fi_evaluation(c: &mut Criterion) {
    let (q, data) = small_fixture();
    let mut platform = EmulationPlatform::assemble(&q, PlatformConfig::default()).unwrap();
    let eval = data.test.take(4);
    let cfg = FaultConfig::new(vec![MultId::new(0, 7)], FaultKind::StuckAtZero);
    let mut g = c.benchmark_group("campaign");
    g.sample_size(10);
    g.bench_function("one_fi_eval_4_images", |b| {
        b.iter(|| {
            platform.inject(&cfg);
            let acc = platform.accuracy(&eval.images, &eval.labels).unwrap();
            platform.clear_faults();
            acc
        })
    });
    g.finish();
}

fn bench_fault_programming(c: &mut Criterion) {
    let (q, _) = small_fixture();
    let mut platform = EmulationPlatform::assemble(&q, PlatformConfig::default()).unwrap();
    let cfg = FaultConfig::new(MultId::all().collect(), FaultKind::Constant(-1));
    let mut g = c.benchmark_group("campaign");
    g.bench_function("program_fi_registers", |b| {
        b.iter(|| {
            platform.inject(&cfg);
            platform.clear_faults();
        })
    });
    g.finish();
}

criterion_group!(benches, bench_single_fi_evaluation, bench_fault_programming);
criterion_main!(benches);
