//! Criterion bench behind Fig. 2 / Fig. 3: the cost of one fault-injection
//! evaluation (program registers, run the evaluation set, read accuracy),
//! of fault (re)programming alone, and of a pool-sharded
//! single-configuration campaign (the worst case for per-configuration
//! parallelism, and the case `DevicePool` exists for).

use criterion::{criterion_group, criterion_main, Criterion};
use nvfi::campaign::{Campaign, CampaignSpec, TargetSelection};
use nvfi::{DevicePool, EmulationPlatform, PlatformConfig, QuantizedEvalSet};
use nvfi_accel::{FaultConfig, FaultKind};
use nvfi_bench::small_fixture;
use nvfi_compiler::regmap::MultId;
use nvfi_dataset::{SynthCifar, SynthCifarConfig};

fn bench_single_fi_evaluation(c: &mut Criterion) {
    let (q, data) = small_fixture();
    let mut platform = EmulationPlatform::assemble(&q, PlatformConfig::default()).unwrap();
    let eval = data.test.take(4);
    let cfg = FaultConfig::new(vec![MultId::new(0, 7)], FaultKind::StuckAtZero);
    let mut g = c.benchmark_group("campaign");
    g.sample_size(10);
    g.bench_function("one_fi_eval_4_images", |b| {
        b.iter(|| {
            platform.inject(&cfg);
            let acc = platform.accuracy(&eval.images, &eval.labels).unwrap();
            platform.clear_faults();
            acc
        })
    });
    g.finish();
}

fn bench_fault_programming(c: &mut Criterion) {
    let (q, _) = small_fixture();
    let mut platform = EmulationPlatform::assemble(&q, PlatformConfig::default()).unwrap();
    let cfg = FaultConfig::new(MultId::all().collect(), FaultKind::Constant(-1));
    let mut g = c.benchmark_group("campaign");
    g.bench_function("program_fi_registers", |b| {
        b.iter(|| {
            platform.inject(&cfg);
            platform.clear_faults();
        })
    });
    g.finish();
}

/// The pool-sharding acceptance scenario: one fault configuration, 256
/// synthetic images. Single device vs. the full host thread budget sharding
/// the batch across a device pool. Records are bit-identical (asserted);
/// wall-clock is what the two-level scheduler is judged on.
fn bench_pool_sharded_campaign(c: &mut Criterion) {
    let (q, _) = small_fixture();
    let eval = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 256,
        ..Default::default()
    })
    .generate()
    .test;
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let campaign = Campaign::new(&q, PlatformConfig::default());
    let mk = |threads| CampaignSpec {
        selection: TargetSelection::Fixed(vec![vec![MultId::new(0, 7)]]),
        kinds: vec![FaultKind::StuckAtZero],
        eval_images: 256,
        threads,
        ..Default::default()
    };
    assert_eq!(
        campaign.run(&mk(1), &eval).unwrap().records,
        campaign.run(&mk(threads), &eval).unwrap().records,
        "pool sharding must not change records"
    );
    let mut g = c.benchmark_group("campaign");
    g.sample_size(10);
    g.bench_function("one_cfg_256img_single_device", |b| {
        b.iter(|| campaign.run(&mk(1), &eval).unwrap())
    });
    g.bench_function(&format!("one_cfg_256img_pool_{threads}threads"), |b| {
        b.iter(|| campaign.run(&mk(threads), &eval).unwrap())
    });
    g.finish();
}

/// The PR 3 quantize-once scenario, on the same one-configuration/256-image
/// fixture as `bench_pool_sharded_campaign`: each iteration is one fault
/// evaluation (inject, classify the whole set, clear). `f32_requant` pays
/// one f32 → i8 quantization pass of all 256 images per evaluation — the
/// per-work-item cost the seed campaign loop paid; `quantize_once`
/// classifies borrowed sub-views of a `QuantizedEvalSet` built once outside
/// the loop, which is what `Campaign::run` now does. Predictions are
/// asserted bit-identical.
fn bench_quantize_once(c: &mut Criterion) {
    let (q, _) = small_fixture();
    let eval = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 256,
        ..Default::default()
    })
    .generate()
    .test;
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut pool = DevicePool::assemble(&q, PlatformConfig::default(), threads).unwrap();
    let cfg = FaultConfig::new(vec![MultId::new(0, 7)], FaultKind::StuckAtZero);
    let qset = QuantizedEvalSet::build(&q, &eval.images);
    pool.inject(&cfg);
    assert_eq!(
        pool.classify(&eval.images).unwrap(),
        pool.classify_i8(&qset).unwrap(),
        "borrowed-i8 and f32 paths must agree"
    );
    pool.clear_faults();
    let mut g = c.benchmark_group("campaign");
    g.sample_size(10);
    g.bench_function("one_cfg_256img_f32_requant", |b| {
        b.iter(|| {
            pool.inject(&cfg);
            let preds = pool.classify(&eval.images).unwrap();
            pool.clear_faults();
            preds
        })
    });
    g.bench_function("one_cfg_256img_quantize_once", |b| {
        b.iter(|| {
            pool.inject(&cfg);
            let preds = pool.classify_i8(&qset).unwrap();
            pool.clear_faults();
            preds
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_single_fi_evaluation,
    bench_fault_programming,
    bench_pool_sharded_campaign,
    bench_quantize_once
);
criterion_main!(benches);
