//! Criterion bench behind Fig. 2 / Fig. 3: the cost of one fault-injection
//! evaluation (program registers, run the evaluation set, read accuracy),
//! of fault (re)programming alone, and of a pool-sharded
//! single-configuration campaign (the worst case for per-configuration
//! parallelism, and the case `DevicePool` exists for).

use criterion::{criterion_group, Criterion};
use nvfi::campaign::{Campaign, CampaignSpec, TargetSelection};
use nvfi::{DevicePool, EmulationPlatform, PlatformConfig, QuantizedEvalSet};
use nvfi_accel::{AccelConfig, ExecMode, FaultConfig, FaultKind};
use nvfi_bench::{medium_fixture, small_fixture};
use nvfi_compiler::regmap::MultId;
use nvfi_dataset::{SynthCifar, SynthCifarConfig};
use nvfi_dist::{run_campaign, CampaignServer, FleetSpec};
use nvfi_obs::trace;
use nvfi_quant::QuantModel;

fn bench_single_fi_evaluation(c: &mut Criterion) {
    let (q, data) = small_fixture();
    let mut platform = EmulationPlatform::assemble(&q, PlatformConfig::default()).unwrap();
    let eval = data.test.take(4);
    let cfg = FaultConfig::new(vec![MultId::new(0, 7)], FaultKind::StuckAtZero);
    let mut g = c.benchmark_group("campaign");
    g.sample_size(10);
    g.bench_function("one_fi_eval_4_images", |b| {
        b.iter(|| {
            platform.inject(&cfg);
            let acc = platform.accuracy(&eval.images, &eval.labels).unwrap();
            platform.clear_faults();
            acc
        })
    });
    g.finish();
}

fn bench_fault_programming(c: &mut Criterion) {
    let (q, _) = small_fixture();
    let mut platform = EmulationPlatform::assemble(&q, PlatformConfig::default()).unwrap();
    let cfg = FaultConfig::new(MultId::all().collect(), FaultKind::Constant(-1));
    let mut g = c.benchmark_group("campaign");
    g.bench_function("program_fi_registers", |b| {
        b.iter(|| {
            platform.inject(&cfg);
            platform.clear_faults();
        })
    });
    g.finish();
}

/// The pool-sharding acceptance scenario: one fault configuration, 256
/// synthetic images. Single device vs. the full host thread budget sharding
/// the batch across a device pool. Records are bit-identical (asserted);
/// wall-clock is what the two-level scheduler is judged on.
fn bench_pool_sharded_campaign(c: &mut Criterion) {
    let (q, _) = small_fixture();
    let eval = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 256,
        ..Default::default()
    })
    .generate()
    .test;
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let campaign = Campaign::new(&q, PlatformConfig::default());
    let mk = |threads| CampaignSpec {
        selection: TargetSelection::Fixed(vec![vec![MultId::new(0, 7)]]),
        kinds: vec![FaultKind::StuckAtZero],
        eval_images: 256,
        threads,
        ..Default::default()
    };
    assert_eq!(
        campaign.run(&mk(1), &eval).unwrap().records,
        campaign.run(&mk(threads), &eval).unwrap().records,
        "pool sharding must not change records"
    );
    let mut g = c.benchmark_group("campaign");
    g.sample_size(10);
    g.bench_function("one_cfg_256img_single_device", |b| {
        b.iter(|| campaign.run(&mk(1), &eval).unwrap())
    });
    g.bench_function(&format!("one_cfg_256img_pool_{threads}threads"), |b| {
        b.iter(|| campaign.run(&mk(threads), &eval).unwrap())
    });
    g.finish();
}

/// The PR 3 quantize-once scenario, on the same one-configuration/256-image
/// fixture as `bench_pool_sharded_campaign`: each iteration is one fault
/// evaluation (inject, classify the whole set, clear). `f32_requant` pays
/// one f32 → i8 quantization pass of all 256 images per evaluation — the
/// per-work-item cost the seed campaign loop paid; `quantize_once`
/// classifies borrowed sub-views of a `QuantizedEvalSet` built once outside
/// the loop, which is what `Campaign::run` now does. Predictions are
/// asserted bit-identical.
fn bench_quantize_once(c: &mut Criterion) {
    let (q, _) = small_fixture();
    let eval = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 256,
        ..Default::default()
    })
    .generate()
    .test;
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut pool = DevicePool::assemble(&q, PlatformConfig::default(), threads).unwrap();
    let cfg = FaultConfig::new(vec![MultId::new(0, 7)], FaultKind::StuckAtZero);
    let qset = QuantizedEvalSet::build(&q, &eval.images);
    pool.inject(&cfg);
    assert_eq!(
        pool.classify(&eval.images).unwrap(),
        pool.classify_i8(&qset).unwrap(),
        "borrowed-i8 and f32 paths must agree"
    );
    pool.clear_faults();
    let mut g = c.benchmark_group("campaign");
    g.sample_size(10);
    g.bench_function("one_cfg_256img_f32_requant", |b| {
        b.iter(|| {
            pool.inject(&cfg);
            let preds = pool.classify(&eval.images).unwrap();
            pool.clear_faults();
            preds
        })
    });
    g.bench_function("one_cfg_256img_quantize_once", |b| {
        b.iter(|| {
            pool.inject(&cfg);
            let preds = pool.classify_i8(&qset).unwrap();
            pool.clear_faults();
            preds
        })
    });
    g.finish();
}

/// Runs one windowed campaign under each of the three execution strategies
/// and benches them, asserting the records bit-identical first:
///
/// * **all-exact** (`ExecMode::Exact`): every op of every inference through
///   the per-product engine — what any windowed campaign cost before
///   op-scoped execution;
/// * **op-scoped** (`ExecMode::Auto`, golden cache disabled): only the ops
///   whose MAC-cycle span intersects the window run exact; the fault-free
///   prefix is recomputed (fast path) per work item;
/// * **op-scoped + golden cache** (the default): the prefix is captured
///   once per image per campaign and restored per work item.
#[allow(clippy::too_many_arguments)]
fn bench_windowed_trio(
    c: &mut Criterion,
    q: &QuantModel,
    eval: &nvfi_dataset::Dataset,
    work_items: usize,
    prefix: &str,
    sample_size: usize,
    window_of: impl Fn(u64) -> std::ops::Range<u64>,
) {
    let total = EmulationPlatform::assemble(q, PlatformConfig::default())
        .unwrap()
        .accel()
        .total_mac_cycles()
        .unwrap();
    let window = window_of(total);
    let targets: Vec<Vec<MultId>> = (0..work_items)
        .map(|i| vec![MultId::new((i % 8) as u8, ((i * 3 + 7) % 8) as u8)])
        .collect();
    let mk_campaign = |mode| {
        let config = PlatformConfig {
            accel: AccelConfig {
                mode,
                ..Default::default()
            },
            ..Default::default()
        };
        Campaign::new(q, config)
    };
    let mk_spec = |golden_cache_bytes| CampaignSpec {
        selection: TargetSelection::Fixed(targets.clone()),
        kinds: vec![FaultKind::StuckAtZero],
        eval_images: eval.len(),
        threads: 1,
        fault_window: Some(window.clone()),
        golden_cache_bytes,
        ..Default::default()
    };
    let all_exact = mk_campaign(ExecMode::Exact);
    let op_scoped = mk_campaign(ExecMode::Auto);
    let a = all_exact.run(&mk_spec(0), eval).unwrap();
    let b = op_scoped.run(&mk_spec(0), eval).unwrap();
    let g = op_scoped.run(&mk_spec(usize::MAX), eval).unwrap();
    assert_eq!(
        a.records, b.records,
        "op-scoped execution must not change windowed records"
    );
    assert_eq!(
        a.records, g.records,
        "golden-prefix restore must not change windowed records"
    );
    let mut group = c.benchmark_group("campaign");
    group.sample_size(sample_size);
    group.bench_function(&format!("{prefix}_all_exact"), |bch| {
        bch.iter(|| all_exact.run(&mk_spec(0), eval).unwrap())
    });
    group.bench_function(&format!("{prefix}_op_scoped"), |bch| {
        bch.iter(|| op_scoped.run(&mk_spec(0), eval).unwrap())
    });
    group.bench_function(&format!("{prefix}_golden_cache"), |bch| {
        bch.iter(|| op_scoped.run(&mk_spec(usize::MAX), eval).unwrap())
    });
    group.finish();
}

/// The op-scoped + golden-cache acceptance scenarios.
///
/// * `win4cfg_256img_*`: a window over the third quarter of the MAC cycles
///   (1/4 of the inference), 256 small-fixture images, 4 fault
///   configurations — the shape transient-SEU sweeps take. Op-scoping is
///   the big lever here (3/4 of every inference leaves the exact engine).
/// * `pulse4cfg_256img_*`: a 2000-cycle pulse at the 3/4 mark (a DeepStrike
///   / EMFI-style narrow transient, ~3% of the inference). The exact-engine
///   share is tiny, so the golden cache's prefix restore becomes the
///   dominant saving on top of op-scoping.
/// * `win1cfg_16img_medium_*`: the quarter-window trio on the medium
///   (paper-sized, width-16 ResNet-18) fixture — fewer images because the
///   all-exact baseline costs ~100 ms/inference there — for the >= 2x
///   acceptance ratio.
fn bench_windowed_campaign(c: &mut Criterion) {
    let (q, _) = small_fixture();
    let eval = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 256,
        ..Default::default()
    })
    .generate()
    .test;
    bench_windowed_trio(c, &q, &eval, 4, "win4cfg_256img", 3, |t| t / 2..t * 3 / 4);
    bench_windowed_trio(c, &q, &eval, 4, "pulse4cfg_256img", 3, |t| {
        t * 3 / 4..t * 3 / 4 + 2000
    });

    let (qm, _) = medium_fixture();
    let eval_m = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 16,
        ..Default::default()
    })
    .generate()
    .test;
    bench_windowed_trio(c, &qm, &eval_m, 1, "win1cfg_16img_medium", 3, |t| {
        t / 2..t * 3 / 4
    });
}

/// The `nvfi-dist` acceptance trio: the same 4-configuration x 128-image
/// campaign through the in-process pool, one worker process, and two worker
/// processes (coordinator + self-exec'd copies of this bench binary over
/// localhost). Each iteration is a **whole** distributed campaign — worker
/// spawn, session programming (plan + weights + eval set shipped once) and
/// shutdown included — so the rows measure the real end-to-end cost a user
/// pays, not just the steady state. Records are asserted bit-identical
/// across the three paths first.
fn bench_dist_campaign(c: &mut Criterion) {
    let (q, _) = small_fixture();
    let eval = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 128,
        ..Default::default()
    })
    .generate()
    .test;
    let config = PlatformConfig::default();
    let mk = |workers| CampaignSpec {
        selection: TargetSelection::Fixed(
            (0..4)
                .map(|i| vec![MultId::new(i as u8, (7 - i) as u8)])
                .collect(),
        ),
        kinds: vec![FaultKind::StuckAtZero],
        eval_images: 128,
        threads: 2,
        workers,
        ..Default::default()
    };
    let fleet = FleetSpec::self_exec();
    let run = |workers: usize| run_campaign(&q, config, &mk(workers), &eval, &fleet).unwrap();
    let inproc = Campaign::new(&q, config).run(&mk(0), &eval).unwrap();
    assert_eq!(
        inproc.records,
        run(1).records,
        "1-worker campaign must match the in-process pool"
    );
    assert_eq!(
        inproc.records,
        run(2).records,
        "2-worker campaign must match the in-process pool"
    );
    let mut g = c.benchmark_group("campaign");
    g.sample_size(5);
    g.bench_function("dist_4cfg_128img_inproc", |b| {
        b.iter(|| Campaign::new(&q, config).run(&mk(0), &eval).unwrap())
    });
    g.bench_function("dist_4cfg_128img_1worker", |b| b.iter(|| run(1)));
    g.bench_function("dist_4cfg_128img_2workers", |b| b.iter(|| run(2)));
    g.finish();
}

/// The session-cache acceptance pair: the same 2-configuration x 64-image
/// campaign shape against a **cold** session (every iteration raises a
/// one-worker fleet, ships plan + weights + eval set, runs, tears down —
/// the `run_campaign` cost) and a **warm** one (a persistent
/// [`CampaignServer`] submit/wait against an already-programmed fleet —
/// only the few-byte artifact delta and the work frames travel). Each
/// iteration uses fresh fault targets so the warm rows measure real fleet
/// work, never a result-cache hit. The warm-vs-cold gap is the price of a
/// fleet raise plus a full artifact ship — what the content-addressed
/// session cache deletes from every campaign after the first.
fn bench_session_cache(c: &mut Criterion) {
    let (q, _) = small_fixture();
    let eval = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 64,
        ..Default::default()
    })
    .generate()
    .test;
    let config = PlatformConfig::default();
    let counter = std::cell::Cell::new(0usize);
    let mk = |i: usize| CampaignSpec {
        selection: TargetSelection::Fixed(vec![
            vec![MultId::new((i % 8) as u8, ((i * 3 + 1) % 8) as u8)],
            vec![MultId::new(((i + 5) % 8) as u8, ((i * 5 + 2) % 8) as u8)],
        ]),
        kinds: vec![FaultKind::StuckAtZero],
        eval_images: 64,
        threads: 2,
        ..Default::default()
    };
    let fleet = FleetSpec::self_exec();

    // Parity sanity before timing anything: a server-submitted campaign is
    // the in-process campaign.
    let server = CampaignServer::start(&fleet, 1).unwrap();
    let spec0 = mk(1000);
    let warm0 = server
        .submit(&q, config, &spec0, &eval)
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(
        Campaign::new(&q, config)
            .run(&spec0, &eval)
            .unwrap()
            .records,
        warm0.records,
        "server-submitted campaign must match the in-process pool"
    );
    server.shutdown();

    let mut g = c.benchmark_group("campaign");
    g.sample_size(5);
    g.bench_function("session_2cfg_64img_cold", |b| {
        b.iter(|| {
            let i = counter.get();
            counter.set(i + 1);
            let server = CampaignServer::start(&fleet, 1).unwrap();
            let r = server
                .submit(&q, config, &mk(i), &eval)
                .unwrap()
                .wait()
                .unwrap();
            server.shutdown();
            r
        })
    });
    let server = CampaignServer::start(&fleet, 1).unwrap();
    g.bench_function("session_2cfg_64img_warm", |b| {
        b.iter(|| {
            let i = counter.get();
            counter.set(i + 1);
            server
                .submit(&q, config, &mk(i), &eval)
                .unwrap()
                .wait()
                .unwrap()
        })
    });
    server.shutdown();
    g.finish();
}

/// The price of full-rate result auditing: the same warm-session shape as
/// `session_2cfg_64img_warm` (whose default is baseline-only auditing) but
/// with `audit_rate: 1.0` — every completed shard silently re-dispatched
/// and compared, on a one-worker fleet where every audit is the in-process
/// arbiter re-execution. The gap against the warm row is what
/// `NVFI_AUDIT_RATE=1` buys and costs.
fn bench_session_audit(c: &mut Criterion) {
    let (q, _) = small_fixture();
    let eval = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 64,
        ..Default::default()
    })
    .generate()
    .test;
    let config = PlatformConfig::default();
    let counter = std::cell::Cell::new(2000usize);
    let mk = |i: usize| CampaignSpec {
        selection: TargetSelection::Fixed(vec![
            vec![MultId::new((i % 8) as u8, ((i * 3 + 1) % 8) as u8)],
            vec![MultId::new(((i + 5) % 8) as u8, ((i * 5 + 2) % 8) as u8)],
        ]),
        kinds: vec![FaultKind::StuckAtZero],
        eval_images: 64,
        threads: 2,
        ..Default::default()
    };
    let fleet = FleetSpec {
        audit_rate: 1.0,
        ..FleetSpec::self_exec()
    };
    let server = CampaignServer::start(&fleet, 1).unwrap();
    // Parity sanity before timing: full-rate auditing must not change a
    // single record.
    let spec0 = mk(3000);
    let audited0 = server
        .submit(&q, config, &spec0, &eval)
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(
        Campaign::new(&q, config)
            .run(&spec0, &eval)
            .unwrap()
            .records,
        audited0.records,
        "fully-audited campaign must match the in-process pool"
    );
    let mut g = c.benchmark_group("campaign");
    g.sample_size(5);
    g.bench_function("session_2cfg_64img_audit", |b| {
        b.iter(|| {
            let i = counter.get();
            counter.set(i + 1);
            server
                .submit(&q, config, &mk(i), &eval)
                .unwrap()
                .wait()
                .unwrap()
        })
    });
    server.shutdown();
    g.finish();
}

/// The flight-recorder overhead row: the same warm-session shape as
/// `session_2cfg_64img_warm` but with the `nvfi_obs` recorder enabled
/// (`NVFI_TRACE=1` equivalent) — every coordinator phase span, shipped
/// worker span summary and audit event is recorded into the bounded ring.
/// The gap against the warm row is the price of always-on tracing; the
/// ci_gate budget keeps it marginal.
fn bench_session_traced(c: &mut Criterion) {
    let (q, _) = small_fixture();
    let eval = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 64,
        ..Default::default()
    })
    .generate()
    .test;
    let config = PlatformConfig::default();
    let counter = std::cell::Cell::new(4000usize);
    let mk = |i: usize| CampaignSpec {
        selection: TargetSelection::Fixed(vec![
            vec![MultId::new((i % 8) as u8, ((i * 3 + 1) % 8) as u8)],
            vec![MultId::new(((i + 5) % 8) as u8, ((i * 5 + 2) % 8) as u8)],
        ]),
        kinds: vec![FaultKind::StuckAtZero],
        eval_images: 64,
        threads: 2,
        ..Default::default()
    };
    let fleet = FleetSpec::self_exec();
    let server = CampaignServer::start(&fleet, 1).unwrap();
    // Parity sanity before timing: tracing must not change a single record.
    trace::set_enabled(true);
    trace::clear();
    let spec0 = mk(5000);
    let traced0 = server
        .submit(&q, config, &spec0, &eval)
        .unwrap()
        .wait()
        .unwrap();
    trace::set_enabled(false);
    assert_eq!(
        Campaign::new(&q, config)
            .run(&spec0, &eval)
            .unwrap()
            .records,
        traced0.records,
        "traced campaign must match the in-process pool"
    );
    trace::set_enabled(true);
    let mut g = c.benchmark_group("campaign");
    g.sample_size(5);
    g.bench_function("session_2cfg_64img_traced", |b| {
        b.iter(|| {
            let i = counter.get();
            counter.set(i + 1);
            server
                .submit(&q, config, &mk(i), &eval)
                .unwrap()
                .wait()
                .unwrap()
        })
    });
    trace::set_enabled(false);
    trace::clear();
    server.shutdown();
    g.finish();
}

criterion_group!(
    benches,
    bench_single_fi_evaluation,
    bench_fault_programming,
    bench_pool_sharded_campaign,
    bench_quantize_once,
    bench_windowed_campaign,
    bench_dist_campaign,
    bench_session_cache,
    bench_session_audit,
    bench_session_traced
);

// Hand-written entry point instead of `criterion_main!`: the distributed
// bench raises its worker fleet by re-executing this binary, so the worker
// hook must run before any benchmark does.
fn main() {
    nvfi_dist::worker::maybe_serve();
    benches();
}
