//! Criterion bench behind Table I's latency rows: the int8 CPU reference
//! executor (1 and 4 threads) against the emulated accelerator's
//! functional fast path. The accelerator's *FPGA* latency is a cycle model
//! (reported by the `table1` binary); this bench measures the software
//! cost of each engine.

use criterion::{criterion_group, criterion_main, Criterion};
use nvfi::{EmulationPlatform, PlatformConfig};
use nvfi_bench::{medium_fixture, small_fixture};

fn bench_cpu_reference(c: &mut Criterion) {
    let (q, data) = medium_fixture();
    let input = q.quantize_input(&data.test.images.slice_image(0));
    let mut g = c.benchmark_group("table1_inference");
    g.sample_size(10);
    g.bench_function("cpu_int8_1thread_w16", |b| {
        b.iter(|| nvfi_quant::exec::forward(&q, &input, 1))
    });
    g.bench_function("cpu_int8_4threads_w16", |b| {
        b.iter(|| nvfi_quant::exec::forward(&q, &input, 4))
    });
    g.finish();
}

fn bench_accelerator_emulation(c: &mut Criterion) {
    let (q, data) = small_fixture();
    let mut platform = EmulationPlatform::assemble(&q, PlatformConfig::default()).unwrap();
    let img = data.test.images.slice_image(0);
    let mut g = c.benchmark_group("table1_inference");
    g.sample_size(10);
    g.bench_function("accel_fast_path_w4", |b| {
        b.iter(|| platform.run(&img).unwrap())
    });
    g.finish();
}

/// Steady-state emulated inference on the medium (Table I width-16) fixture
/// — the number the zero-realloc hot path is judged on. Measures both the
/// single-image path and the batched classify path over the whole test set.
fn bench_accelerator_medium(c: &mut Criterion) {
    let (q, data) = medium_fixture();
    let mut platform = EmulationPlatform::assemble(&q, PlatformConfig::default()).unwrap();
    let img = data.test.images.slice_image(0);
    let mut g = c.benchmark_group("inference_medium");
    g.sample_size(10);
    g.bench_function("accel_fast_path_w16", |b| {
        b.iter(|| platform.run(&img).unwrap())
    });
    g.bench_function("accel_classify8_w16", |b| {
        b.iter(|| platform.classify(&data.test.images).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cpu_reference,
    bench_accelerator_emulation,
    bench_accelerator_medium
);
criterion_main!(benches);
