//! Criterion bench behind the Sec. IV speedup claim: one network through
//! (a) the emulator's fast path, (b) the cycle-driven systolic simulator
//! (two conv layers, as SAFFIRA reports), and (c) graph-level software FI.

use criterion::{criterion_group, criterion_main, Criterion};
use nvfi::{EmulationPlatform, PlatformConfig};
use nvfi_bench::small_fixture;
use nvfi_quant::swfi::GraphFault;

fn bench_engines(c: &mut Criterion) {
    let (q, data) = small_fixture();
    let img_f32 = data.test.images.slice_image(0);
    let img_i8 = q.quantize_input(&img_f32);
    let mut platform = EmulationPlatform::assemble(&q, PlatformConfig::default()).unwrap();

    let mut g = c.benchmark_group("speedup_engines");
    g.sample_size(10);
    g.bench_function("emulator_fast_path_full_net", |b| {
        b.iter(|| platform.run(&img_f32).unwrap())
    });
    g.bench_function("systolic_cycle_sim_2_layers", |b| {
        b.iter(|| nvfi_systolic::sim::simulate_first_convs(&q, &img_i8, 2, 8, &[]))
    });
    g.bench_function("graph_level_sw_fi_full_net", |b| {
        let faults = [GraphFault::StuckZeroChannel { op: 0, channel: 0 }];
        b.iter(|| nvfi_quant::exec::forward_with_graph_faults(&q, &img_i8, 1, &faults))
    });
    g.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
