#![forbid(unsafe_code)]
//! `nvfi-lint` — a purpose-built source scanner for this workspace.
//!
//! Rustc and clippy police the language; this linter polices the *project
//! contracts* that the distributed campaign fabric depends on and that no
//! general-purpose tool knows about:
//!
//! | rule | contract |
//! |------|----------|
//! | `decode-panic` | The wire-decode paths (`dist/src/{codec,wire,checkpoint,server}.rs` outside `#[cfg(test)]`) never panic on hostile input: no `unwrap`/`expect`/`panic!`-family macros and no slice/array indexing — malformed bytes must surface as `Err`, because a panicking worker looks exactly like a crashed one to the coordinator (and the server additionally verifies attested results from workers it must assume can lie). |
//! | `truncating-cast` | No `as u8`/`as u16`/`as u32` casts in length/byte-size arithmetic anywhere in `dist/src` — a silently wrapped length is how a 4 GiB frame becomes a 0-byte read. Use `try_from` or an asserted guard. |
//! | `msg-tag-coverage` | Every `TAG_*` wire tag is matched by a decode arm, and every [`Msg`] variant round-trips through the codec property tests — a tag without a decode arm is a frame the fleet cannot parse. |
//! | `forbid-unsafe` | Every crate root in the workspace declares `#![forbid(unsafe_code)]`: the emulator is a *model*, and a model with UB proves nothing. |
//! | `bare-eprintln` | No `eprintln!`/`eprint!` in `core/src` or `dist/src` outside `#[cfg(test)]`: human-facing progress goes through the one `nvfi_obs::progress` renderer (structured events, one lock, stable formats) so concurrent pool/fleet threads never interleave partial lines and downstream log parsers see one grammar. |
//!
//! A finding the author has justified is silenced with an allow comment on
//! the offending line or the line directly above it:
//!
//! ```text
//! // nvfi-lint: allow(truncating-cast) — length is assert-bounded above
//! w.write_all(&(payload.len() as u32).to_le_bytes())?;
//! ```
//!
//! The scanner is deliberately lexical (comments and string literals are
//! stripped before matching, so a `panic!` in a doc comment never trips it)
//! rather than a full parser: the rules are narrow enough that token-level
//! matching plus the allow escape hatch stays exact in practice, and the
//! crate needs zero dependencies.
//!
//! [`Msg`]: ../nvfi_dist/wire/enum.Msg.html

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Wire-decode paths must be panic-free.
pub const RULE_DECODE_PANIC: &str = "decode-panic";
/// No truncating casts in length arithmetic.
pub const RULE_TRUNCATING_CAST: &str = "truncating-cast";
/// Every wire tag decoded, every `Msg` variant property-tested.
pub const RULE_MSG_TAG_COVERAGE: &str = "msg-tag-coverage";
/// Every crate root forbids `unsafe`.
pub const RULE_FORBID_UNSAFE: &str = "forbid-unsafe";
/// Progress output goes through `nvfi_obs::progress`, not raw stderr.
pub const RULE_BARE_EPRINTLN: &str = "bare-eprintln";

/// One finding: a named rule tripped at a file and line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The rule that fired (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What tripped and why it matters.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: {}",
            self.rule, self.file, self.line, self.detail
        )
    }
}

/// Replaces the contents of comments, string literals and char literals
/// with spaces, preserving line structure, so the rule matchers only ever
/// see code. Handles line and (nested) block comments, escapes in string
/// and char literals, raw strings with any number of `#`s, and leaves
/// lifetimes (`'a`) intact.
#[must_use]
pub fn strip_comments_and_strings(source: &str) -> String {
    let b: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut i = 0;
    // Emits `c` if it is a newline (to keep line numbers), else a space.
    fn blank(out: &mut String, c: char) {
        out.push(if c == '\n' { '\n' } else { ' ' });
    }
    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == '/' && b.get(i + 1) == Some(&'/') {
            while i < b.len() && b[i] != '\n' {
                blank(&mut out, b[i]);
                i += 1;
            }
            continue;
        }
        // Block comment (Rust nests them).
        if c == '/' && b.get(i + 1) == Some(&'*') {
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    blank(&mut out, b[i]);
                    blank(&mut out, b[i + 1]);
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    blank(&mut out, b[i]);
                    blank(&mut out, b[i + 1]);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    blank(&mut out, b[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw string: r"..." / r#"..."# (with optional leading b).
        let raw_start = if c == 'r' {
            Some(i + 1)
        } else if c == 'b' && b.get(i + 1) == Some(&'r') {
            Some(i + 2)
        } else {
            None
        };
        if let Some(mut j) = raw_start {
            let hashes_from = j;
            while b.get(j) == Some(&'#') {
                j += 1;
            }
            let hashes = j - hashes_from;
            if b.get(j) == Some(&'"') {
                // Preceding `r`/`br` and hashes are part of the literal.
                while i <= j {
                    blank(&mut out, b[i]);
                    i += 1;
                }
                // Scan for `"` followed by `hashes` `#`s.
                'raw: while i < b.len() {
                    if b[i] == '"' && (1..=hashes).all(|k| b.get(i + k) == Some(&'#')) {
                        for _ in 0..=hashes {
                            blank(&mut out, b[i]);
                            i += 1;
                        }
                        break 'raw;
                    }
                    blank(&mut out, b[i]);
                    i += 1;
                }
                continue;
            }
        }
        // Plain or byte string.
        if c == '"' || (c == 'b' && b.get(i + 1) == Some(&'"')) {
            if c == 'b' {
                blank(&mut out, c);
                i += 1;
            }
            blank(&mut out, b[i]); // opening quote
            i += 1;
            while i < b.len() {
                if b[i] == '\\' {
                    blank(&mut out, b[i]);
                    if i + 1 < b.len() {
                        blank(&mut out, b[i + 1]);
                    }
                    i += 2;
                } else if b[i] == '"' {
                    blank(&mut out, b[i]);
                    i += 1;
                    break;
                } else {
                    blank(&mut out, b[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime: 'x' or '\n' is a literal; 'a (no
        // closing quote right after) is a lifetime and stays as code.
        if c == '\'' {
            let is_char = match b.get(i + 1) {
                Some('\\') => true,
                Some(_) => b.get(i + 2) == Some(&'\''),
                None => false,
            };
            if is_char {
                blank(&mut out, b[i]);
                i += 1;
                while i < b.len() {
                    if b[i] == '\\' {
                        blank(&mut out, b[i]);
                        if i + 1 < b.len() {
                            blank(&mut out, b[i + 1]);
                        }
                        i += 2;
                    } else if b[i] == '\'' {
                        blank(&mut out, b[i]);
                        i += 1;
                        break;
                    } else {
                        blank(&mut out, b[i]);
                        i += 1;
                    }
                }
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out
}

/// True if line `idx` (0-based, into the **original** source lines) or the
/// line directly above carries `// nvfi-lint: allow(rule)`.
fn allowed(original_lines: &[&str], idx: usize, rule: &str) -> bool {
    let marker = format!("nvfi-lint: allow({rule})");
    let here = original_lines.get(idx).is_some_and(|l| l.contains(&marker));
    let above = idx > 0 && original_lines[idx - 1].contains(&marker);
    here || above
}

/// Lines of `source` before the first `#[cfg(test)]` attribute — the
/// region the decode-path rules police. Test modules may panic freely.
fn non_test_line_count(stripped_lines: &[&str]) -> usize {
    stripped_lines
        .iter()
        .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
        .unwrap_or(stripped_lines.len())
}

const PANIC_TOKENS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// `decode-panic`: flags panic tokens and slice/array indexing in the
/// non-test region of a wire-decode file.
#[must_use]
pub fn check_decode_panics(file: &str, source: &str) -> Vec<Violation> {
    let stripped = strip_comments_and_strings(source);
    let stripped_lines: Vec<&str> = stripped.lines().collect();
    let original_lines: Vec<&str> = source.lines().collect();
    let limit = non_test_line_count(&stripped_lines);
    let mut out = Vec::new();
    for (idx, line) in stripped_lines.iter().take(limit).enumerate() {
        if allowed(&original_lines, idx, RULE_DECODE_PANIC) {
            continue;
        }
        for tok in PANIC_TOKENS {
            if line.contains(tok) {
                out.push(Violation {
                    rule: RULE_DECODE_PANIC,
                    file: file.to_string(),
                    line: idx + 1,
                    detail: format!(
                        "`{tok}` in a wire-decode path; malformed input must return Err, not panic"
                    ),
                });
            }
        }
        if has_slice_index(line) {
            out.push(Violation {
                rule: RULE_DECODE_PANIC,
                file: file.to_string(),
                line: idx + 1,
                detail: "slice/array indexing in a wire-decode path can panic; \
                         use get()/split-at helpers or justify with an allow comment"
                    .to_string(),
            });
        }
    }
    out
}

/// True if the (stripped) line contains an indexing bracket: `[` directly
/// preceded by an identifier character, `)` or `]`. Attribute brackets
/// (`#[...]`), array types (`[u8; 4]`) and macro brackets (`vec![`) do not
/// match.
fn has_slice_index(stripped_line: &str) -> bool {
    let chars: Vec<char> = stripped_line.chars().collect();
    chars.windows(2).any(|w| {
        w[1] == '[' && (w[0].is_ascii_alphanumeric() || w[0] == '_' || w[0] == ')' || w[0] == ']')
    })
}

const NARROWING_CASTS: [&str; 3] = [" as u8", " as u16", " as u32"];

/// `truncating-cast`: flags `as u8`/`as u16`/`as u32` on non-test lines
/// whose context is length/size arithmetic (the line mentions `len`,
/// `size`, `count` or `remaining`; `usize`/`isize` do not count as
/// `size`).
#[must_use]
pub fn check_truncating_casts(file: &str, source: &str) -> Vec<Violation> {
    let stripped = strip_comments_and_strings(source);
    let stripped_lines: Vec<&str> = stripped.lines().collect();
    let original_lines: Vec<&str> = source.lines().collect();
    let limit = non_test_line_count(&stripped_lines);
    let mut out = Vec::new();
    for (idx, line) in stripped_lines.iter().take(limit).enumerate() {
        let Some(cast) = NARROWING_CASTS.iter().find(|c| line.contains(*c)) else {
            continue;
        };
        let ctx = line
            .to_lowercase()
            .replace("usize", "")
            .replace("isize", "");
        let lengthy = ["len", "size", "count", "remaining"]
            .iter()
            .any(|w| ctx.contains(w));
        if !lengthy || allowed(&original_lines, idx, RULE_TRUNCATING_CAST) {
            continue;
        }
        out.push(Violation {
            rule: RULE_TRUNCATING_CAST,
            file: file.to_string(),
            line: idx + 1,
            detail: format!(
                "`{}` in length/size arithmetic silently wraps; use try_from or an asserted guard",
                cast.trim_start()
            ),
        });
    }
    out
}

/// `msg-tag-coverage`: every `TAG_*` const in the wire module must appear
/// in a `match` decode arm, and every `Msg` variant must appear as
/// `Msg::Variant` in the codec round-trip property tests.
#[must_use]
pub fn check_msg_tag_coverage(
    wire_file: &str,
    wire_source: &str,
    proptests_file: &str,
    proptests_source: &str,
) -> Vec<Violation> {
    let stripped = strip_comments_and_strings(wire_source);
    let original_lines: Vec<&str> = wire_source.lines().collect();
    let mut out = Vec::new();

    // Tags: `const TAG_X: u8 = ...;` declarations.
    let mut tags: Vec<(String, usize)> = Vec::new();
    for (idx, line) in stripped.lines().enumerate() {
        let t = line.trim_start();
        if let Some(rest) = t.strip_prefix("const TAG_") {
            let name: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            tags.push((format!("TAG_{name}"), idx));
        }
    }
    for (tag, decl_idx) in &tags {
        let decoded = stripped.lines().enumerate().any(|(idx, line)| {
            idx != *decl_idx && line.contains(tag.as_str()) && line.contains("=>")
        });
        if !decoded && !allowed(&original_lines, *decl_idx, RULE_MSG_TAG_COVERAGE) {
            out.push(Violation {
                rule: RULE_MSG_TAG_COVERAGE,
                file: wire_file.to_string(),
                line: decl_idx + 1,
                detail: format!("wire tag `{tag}` has no decode match arm"),
            });
        }
    }

    // Variants of `pub enum Msg { ... }` at brace depth 1.
    let mut variants: Vec<(String, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut in_msg = false;
    for (idx, line) in stripped.lines().enumerate() {
        let t = line.trim();
        if t.starts_with("pub enum Msg") {
            in_msg = true;
        }
        if in_msg && depth == 1 {
            let ident: String = t
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                variants.push((ident, idx));
            }
        }
        for c in t.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth = depth.saturating_sub(1);
                    if in_msg && depth == 0 {
                        in_msg = false;
                    }
                }
                _ => {}
            }
        }
        if !in_msg && !variants.is_empty() {
            break;
        }
    }
    let stripped_props = strip_comments_and_strings(proptests_source);
    for (variant, decl_idx) in &variants {
        let needle = format!("Msg::{variant}");
        let tested = stripped_props.lines().any(|l| l.contains(needle.as_str()));
        if !tested && !allowed(&original_lines, *decl_idx, RULE_MSG_TAG_COVERAGE) {
            out.push(Violation {
                rule: RULE_MSG_TAG_COVERAGE,
                file: wire_file.to_string(),
                line: decl_idx + 1,
                detail: format!(
                    "`Msg::{variant}` never appears in the round-trip property tests \
                     ({proptests_file})"
                ),
            });
        }
    }
    out
}

/// `bare-eprintln`: flags `eprintln!`/`eprint!` in the non-test region of a
/// core/dist source file — progress output must go through the structured
/// `nvfi_obs::progress` renderer instead, so emit sites stay declarative
/// and concurrent threads never interleave partial lines.
#[must_use]
pub fn check_bare_eprintln(file: &str, source: &str) -> Vec<Violation> {
    let stripped = strip_comments_and_strings(source);
    let stripped_lines: Vec<&str> = stripped.lines().collect();
    let original_lines: Vec<&str> = source.lines().collect();
    let limit = non_test_line_count(&stripped_lines);
    let mut out = Vec::new();
    for (idx, line) in stripped_lines.iter().take(limit).enumerate() {
        if !(line.contains("eprintln!") || line.contains("eprint!")) {
            continue;
        }
        if allowed(&original_lines, idx, RULE_BARE_EPRINTLN) {
            continue;
        }
        out.push(Violation {
            rule: RULE_BARE_EPRINTLN,
            file: file.to_string(),
            line: idx + 1,
            detail: "bare eprintln!/eprint! in core/dist; emit a structured \
                     `nvfi_obs::progress::Event` (or `progress::note`) so the \
                     single renderer owns stderr"
                .to_string(),
        });
    }
    out
}

/// `forbid-unsafe`: a crate root must declare `#![forbid(unsafe_code)]`.
#[must_use]
pub fn check_forbid_unsafe(file: &str, source: &str) -> Vec<Violation> {
    if source.contains("#![forbid(unsafe_code)]")
        || allowed(&source.lines().collect::<Vec<_>>(), 0, RULE_FORBID_UNSAFE)
    {
        return Vec::new();
    }
    vec![Violation {
        rule: RULE_FORBID_UNSAFE,
        file: file.to_string(),
        line: 1,
        detail: "crate root must declare #![forbid(unsafe_code)]".to_string(),
    }]
}

/// The wire-decode files policed by `decode-panic`. `server.rs` joined the
/// list with wire v4: it recomputes attestations over hostile `ShardDone`
/// bodies and arbitrates audits, so a panic there takes the whole fleet's
/// coordinator down on input one lying worker controls.
const DECODE_FILES: [&str; 4] = [
    "crates/dist/src/codec.rs",
    "crates/dist/src/wire.rs",
    "crates/dist/src/checkpoint.rs",
    "crates/dist/src/server.rs",
];

fn read(root: &Path, rel: &str) -> io::Result<String> {
    fs::read_to_string(root.join(rel)).map_err(|e| io::Error::new(e.kind(), format!("{rel}: {e}")))
}

/// Runs every rule over the workspace rooted at `root`. Returns all
/// findings (empty = clean), sorted by file then line.
///
/// # Errors
///
/// Propagates IO errors reading the policed files — a missing decode file
/// is an error, not a pass, so the lint cannot rot silently if files move.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut out = Vec::new();

    for rel in DECODE_FILES {
        out.extend(check_decode_panics(rel, &read(root, rel)?));
    }

    // truncating-cast polices all of dist/src (coordinator, worker, fleet —
    // anything that computes shard/frame extents).
    let dist_src = root.join("crates/dist/src");
    let mut dist_files: Vec<PathBuf> = fs::read_dir(&dist_src)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    dist_files.sort();
    for path in dist_files {
        let rel = format!(
            "crates/dist/src/{}",
            path.file_name().unwrap_or_default().to_string_lossy()
        );
        out.extend(check_truncating_casts(&rel, &read(root, &rel)?));
    }

    // bare-eprintln polices every core and dist source file, the dist
    // binaries included (read_dir does not recurse, so `src/bin` is listed
    // explicitly).
    for dir in ["crates/core/src", "crates/dist/src", "crates/dist/src/bin"] {
        let mut files: Vec<PathBuf> = fs::read_dir(root.join(dir))?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "rs"))
            .collect();
        files.sort();
        for path in files {
            let rel = format!(
                "{dir}/{}",
                path.file_name().unwrap_or_default().to_string_lossy()
            );
            out.extend(check_bare_eprintln(&rel, &read(root, &rel)?));
        }
    }

    out.extend(check_msg_tag_coverage(
        "crates/dist/src/wire.rs",
        &read(root, "crates/dist/src/wire.rs")?,
        "crates/dist/tests/proptests.rs",
        &read(root, "crates/dist/tests/proptests.rs")?,
    ));

    let mut roots: Vec<String> = vec!["src/lib.rs".to_string()];
    for dir in ["crates", "shims"] {
        let mut entries: Vec<PathBuf> = fs::read_dir(root.join(dir))?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.join("src/lib.rs").is_file())
            .collect();
        entries.sort();
        for p in entries {
            roots.push(format!(
                "{dir}/{}/src/lib.rs",
                p.file_name().unwrap_or_default().to_string_lossy()
            ));
        }
    }
    for rel in roots {
        out.extend(check_forbid_unsafe(&rel, &read(root, &rel)?));
    }

    out.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripping_blanks_comments_strings_and_chars_but_not_lifetimes() {
        let src = r#"fn f<'a>(s: &'a str) -> char {
    // panic!("in a comment")
    let _msg = "panic!(in a string) b.unwrap()";
    /* block .unwrap() /* nested */ still comment */
    let c = '[';
    'x'
}"#;
        let stripped = strip_comments_and_strings(src);
        assert!(!stripped.contains("panic!"));
        assert!(!stripped.contains(".unwrap()"));
        assert!(!stripped.contains('['), "char literal '[' blanked");
        assert!(stripped.contains("&'a str"), "lifetime survives");
        assert_eq!(stripped.lines().count(), src.lines().count());
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let x = r#\"a.unwrap() \"quoted\" \"#; let y = x[0];";
        let stripped = strip_comments_and_strings(src);
        assert!(!stripped.contains(".unwrap()"));
        assert!(
            stripped.contains("x[0]"),
            "code after the raw string survives"
        );
    }

    #[test]
    fn decode_panic_flags_tokens_and_indexing() {
        let src =
            "fn decode(b: &[u8]) -> u8 {\n    let x = b[0];\n    b.first().copied().unwrap()\n}\n";
        let v = check_decode_panics("f.rs", src);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == RULE_DECODE_PANIC));
        assert_eq!(v[0].line, 2, "indexing on line 2");
        assert_eq!(v[1].line, 3, "unwrap on line 3");
    }

    #[test]
    fn decode_panic_ignores_tests_attributes_and_allows() {
        let src = "\
#[derive(Debug)]
struct S;
// nvfi-lint: allow(decode-panic) — bounds checked above
let x = b[0];
let arr: [u8; 4] = [0; 4];
let v = vec![1, 2];
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); }
}
";
        assert!(check_decode_panics("f.rs", src).is_empty());
    }

    #[test]
    fn truncating_cast_needs_length_context() {
        let flagged = "let n = payload.len() as u32;\n";
        let v = check_truncating_casts("f.rs", flagged);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RULE_TRUNCATING_CAST);
        // No len/size/count context: a lane index cast is fine.
        assert!(check_truncating_casts("f.rs", "let l = t.lane() as u8;\n").is_empty());
        // `usize` does not count as `size` context.
        assert!(check_truncating_casts("f.rs", "let x = (y as usize) as u32;\n").is_empty());
        // Allow comment silences it.
        let allowed = "// nvfi-lint: allow(truncating-cast)\nlet n = payload.len() as u32;\n";
        assert!(check_truncating_casts("f.rs", allowed).is_empty());
    }

    const WIRE_FIXTURE: &str = "\
const TAG_A: u8 = 1;
const TAG_B: u8 = 2;
pub enum Msg {
    Alpha { x: u32 },
    Beta,
}
fn decode(tag: u8) {
    match tag {
        TAG_A => {}
        TAG_B => {}
        _ => {}
    }
}
";

    #[test]
    fn tag_coverage_clean_fixture_passes() {
        let props = "let m = Msg::Alpha { x: 1 }; let n = Msg::Beta;";
        assert!(check_msg_tag_coverage("w.rs", WIRE_FIXTURE, "p.rs", props).is_empty());
    }

    #[test]
    fn tag_coverage_flags_missing_decode_arm_and_untested_variant() {
        let wire = WIRE_FIXTURE.replace("        TAG_B => {}\n", "");
        let props = "let m = Msg::Alpha { x: 1 };"; // Beta never round-tripped
        let v = check_msg_tag_coverage("w.rs", &wire, "p.rs", props);
        assert_eq!(v.len(), 2);
        assert!(v[0].detail.contains("TAG_B"), "{}", v[0]);
        assert!(v[1].detail.contains("Msg::Beta"), "{}", v[1]);
    }

    #[test]
    fn bare_eprintln_flags_raw_stderr_but_respects_tests_and_allows() {
        let src = "fn f() {\n    eprintln!(\"progress {}\", 1);\n}\n";
        let v = check_bare_eprintln("f.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RULE_BARE_EPRINTLN);
        assert_eq!(v[0].line, 2);
        // A mention in a comment or string never trips the rule.
        let quiet = "// eprintln! is banned here\nlet s = \"eprintln!\";\n";
        assert!(check_bare_eprintln("f.rs", quiet).is_empty());
        // Test modules may print freely.
        let test_only = "#[cfg(test)]\nmod tests {\n    fn t() { eprintln!(\"x\"); }\n}\n";
        assert!(check_bare_eprintln("f.rs", test_only).is_empty());
        // An allow comment silences a justified site.
        let allowed =
            "// nvfi-lint: allow(bare-eprintln) — panic handler, renderer unusable\neprintln!(\"x\");\n";
        assert!(check_bare_eprintln("f.rs", allowed).is_empty());
    }

    #[test]
    fn forbid_unsafe_checks_the_attribute() {
        assert!(check_forbid_unsafe("l.rs", "#![forbid(unsafe_code)]\npub fn f() {}\n").is_empty());
        let v = check_forbid_unsafe("l.rs", "pub fn f() {}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RULE_FORBID_UNSAFE);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn the_workspace_itself_is_clean() {
        // CARGO_MANIFEST_DIR = crates/lint; the workspace root is two up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .unwrap()
            .to_path_buf();
        let v = lint_workspace(&root).expect("workspace files readable");
        assert!(
            v.is_empty(),
            "workspace must lint clean:\n{}",
            v.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
