#![forbid(unsafe_code)]
//! The `nvfi-lint` binary: scans the workspace and exits non-zero on any
//! violation, printing each as `rule: file:line: detail`.
//!
//! ```text
//! nvfi-lint [WORKSPACE_ROOT]   # default: walk up from cwd to [workspace]
//! nvfi-lint --self-test        # prove the gate fires on seeded violations
//! ```
//!
//! `--self-test` runs every rule against built-in sources that each seed
//! exactly the violation the rule exists to catch, and fails if any rule
//! stays silent — the CI demonstration that the gate actually gates.

use std::path::PathBuf;
use std::process::ExitCode;

use nvfi_lint::{
    check_bare_eprintln, check_decode_panics, check_forbid_unsafe, check_msg_tag_coverage,
    check_truncating_casts, lint_workspace, Violation, RULE_BARE_EPRINTLN, RULE_DECODE_PANIC,
    RULE_FORBID_UNSAFE, RULE_MSG_TAG_COVERAGE, RULE_TRUNCATING_CAST,
};

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// One seeded-violation fixture: a rule, a source that must trip it, and
/// the check that runs it.
fn self_test() -> ExitCode {
    let cases: Vec<(&str, Vec<Violation>)> = vec![
        (
            RULE_DECODE_PANIC,
            check_decode_panics(
                "self-test/decode.rs",
                "fn decode(b: &[u8]) -> u8 {\n    let hi = b[0];\n    hi\n}\n",
            ),
        ),
        (
            RULE_TRUNCATING_CAST,
            check_truncating_casts(
                "self-test/cast.rs",
                "fn frame_len(payload: &[u8]) -> u32 {\n    payload.len() as u32\n}\n",
            ),
        ),
        (
            RULE_MSG_TAG_COVERAGE,
            check_msg_tag_coverage(
                "self-test/wire.rs",
                "const TAG_ORPHAN: u8 = 9;\npub enum Msg {\n    Orphan,\n}\n",
                "self-test/proptests.rs",
                "// no round-trip for Msg::Orphan's tag\n",
            ),
        ),
        (
            RULE_FORBID_UNSAFE,
            check_forbid_unsafe("self-test/lib.rs", "pub fn root_without_forbid() {}\n"),
        ),
        (
            RULE_BARE_EPRINTLN,
            check_bare_eprintln(
                "self-test/progress.rs",
                "fn tick(done: usize) {\n    eprintln!(\"done {done}\");\n}\n",
            ),
        ),
    ];
    let mut failed = false;
    for (rule, violations) in &cases {
        if violations.iter().any(|v| v.rule == *rule) {
            for v in violations {
                println!("self-test: caught seeded violation: {v}");
            }
        } else {
            eprintln!("self-test: rule `{rule}` did NOT fire on its seeded violation");
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!(
            "self-test: all {} rules fired on their seeded violations",
            cases.len()
        );
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--self-test") {
        return self_test();
    }
    let root = match args.first() {
        Some(p) => PathBuf::from(p),
        None => match find_workspace_root() {
            Some(r) => r,
            None => {
                eprintln!("nvfi-lint: no [workspace] Cargo.toml found above the current directory");
                return ExitCode::FAILURE;
            }
        },
    };
    match lint_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("nvfi-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!("nvfi-lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("nvfi-lint: {e}");
            ExitCode::FAILURE
        }
    }
}
