//! Dataset containers.

use nvfi_tensor::{Shape4, Tensor};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Number of classes in SynthCIFAR / CIFAR-10.
pub const NUM_CLASSES: usize = 10;

/// A labelled image-classification dataset: dense NCHW f32 images (roughly
/// in `[-1, 1]`) and one label per batch item.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Images, shape `(N, 3, H, W)`.
    pub images: Tensor<f32>,
    /// Class labels, `labels.len() == N`.
    pub labels: Vec<u8>,
}

impl Dataset {
    /// Creates a dataset, validating that labels match the batch dimension.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != images.shape().n` or any label is out of
    /// range.
    #[must_use]
    pub fn new(images: Tensor<f32>, labels: Vec<u8>) -> Self {
        assert_eq!(
            images.shape().n,
            labels.len(),
            "labels do not match batch size"
        );
        assert!(
            labels.iter().all(|&l| (l as usize) < NUM_CLASSES),
            "label out of range (>= {NUM_CLASSES})"
        );
        Dataset { images, labels }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// A deterministic shuffled index permutation for epoch iteration.
    #[must_use]
    pub fn shuffled_indices(&self, seed: u64) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        idx
    }

    /// Copies the samples at `indices` into a new contiguous batch.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[must_use]
    pub fn gather(&self, indices: &[usize]) -> Dataset {
        let s = self.images.shape();
        let mut images = Tensor::zeros(Shape4::new(indices.len(), s.c, s.h, s.w));
        let mut labels = Vec::with_capacity(indices.len());
        for (row, &i) in indices.iter().enumerate() {
            images.image_mut(row).copy_from_slice(self.images.image(i));
            labels.push(self.labels[i]);
        }
        Dataset { images, labels }
    }

    /// The first `n` samples as a new dataset (useful for fixed evaluation
    /// subsets); `n` is clamped to the dataset size.
    #[must_use]
    pub fn take(&self, n: usize) -> Dataset {
        let n = n.min(self.len());
        self.gather(&(0..n).collect::<Vec<_>>())
    }

    /// Per-class sample counts.
    #[must_use]
    pub fn class_histogram(&self) -> [usize; NUM_CLASSES] {
        let mut h = [0usize; NUM_CLASSES];
        for &l in &self.labels {
            h[l as usize] += 1;
        }
        h
    }
}

/// A train/test split.
#[derive(Clone, Debug)]
pub struct TrainTest {
    /// Training partition.
    pub train: Dataset,
    /// Held-out test partition.
    pub test: Dataset,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let images = Tensor::from_fn(Shape4::new(4, 1, 2, 2), |n, _, _, _| n as f32);
        Dataset::new(images, vec![0, 1, 2, 3])
    }

    #[test]
    fn gather_reorders() {
        let d = tiny();
        let g = d.gather(&[3, 0]);
        assert_eq!(g.labels, vec![3, 0]);
        assert_eq!(g.images.at(0, 0, 0, 0), 3.0);
        assert_eq!(g.images.at(1, 0, 0, 0), 0.0);
    }

    #[test]
    fn take_clamps() {
        let d = tiny();
        assert_eq!(d.take(2).len(), 2);
        assert_eq!(d.take(99).len(), 4);
    }

    #[test]
    fn shuffle_is_deterministic_permutation() {
        let d = tiny();
        let a = d.shuffled_indices(7);
        let b = d.shuffled_indices(7);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        assert_ne!(d.shuffled_indices(8), a, "different seeds should differ");
    }

    #[test]
    fn histogram_counts() {
        let d = tiny();
        let h = d.class_histogram();
        assert_eq!(&h[..4], &[1, 1, 1, 1]);
        assert_eq!(h[4..].iter().sum::<usize>(), 0);
    }

    #[test]
    #[should_panic(expected = "labels do not match")]
    fn mismatched_labels_rejected() {
        let images = Tensor::<f32>::zeros(Shape4::new(2, 1, 1, 1));
        let _ = Dataset::new(images, vec![0]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn oversized_label_rejected() {
        let images = Tensor::<f32>::zeros(Shape4::new(1, 1, 1, 1));
        let _ = Dataset::new(images, vec![10]);
    }
}
