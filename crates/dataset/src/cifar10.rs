//! Loader for the real CIFAR-10 binary format.
//!
//! Each record of a CIFAR-10 binary file is 3073 bytes: one label byte
//! followed by 3x32x32 pixel bytes in CHW order. If you have the dataset
//! (`cifar-10-batches-bin/`), the experiments can run on it instead of
//! SynthCIFAR; pixel values are scaled to `[-1, 1]`.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use nvfi_tensor::{Shape4, Tensor};

use crate::Dataset;

/// Bytes per record: 1 label + 3072 pixels.
pub const RECORD_BYTES: usize = 3073;
/// Image side length.
pub const SIZE: usize = 32;

/// Error loading a CIFAR-10 binary file.
#[derive(Debug)]
pub enum LoadError {
    /// The file could not be read.
    Io(io::Error),
    /// The file length is not a multiple of the record size.
    BadLength {
        /// Observed file length in bytes.
        len: usize,
    },
    /// A record had a label byte outside `0..10`.
    BadLabel {
        /// Record index.
        record: usize,
        /// The offending label byte.
        label: u8,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "could not read CIFAR-10 file: {e}"),
            LoadError::BadLength { len } => {
                write!(f, "file length {len} is not a multiple of {RECORD_BYTES}")
            }
            LoadError::BadLabel { record, label } => {
                write!(f, "record {record} has invalid label {label}")
            }
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Parses CIFAR-10 records from an in-memory buffer.
///
/// # Errors
///
/// Returns [`LoadError::BadLength`] or [`LoadError::BadLabel`] on malformed
/// input.
pub fn parse(bytes: &[u8]) -> Result<Dataset, LoadError> {
    if !bytes.len().is_multiple_of(RECORD_BYTES) {
        return Err(LoadError::BadLength { len: bytes.len() });
    }
    let n = bytes.len() / RECORD_BYTES;
    let mut images = Tensor::zeros(Shape4::new(n, 3, SIZE, SIZE));
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let rec = &bytes[i * RECORD_BYTES..(i + 1) * RECORD_BYTES];
        let label = rec[0];
        if label >= 10 {
            return Err(LoadError::BadLabel { record: i, label });
        }
        labels.push(label);
        let img = images.image_mut(i);
        for (dst, &px) in img.iter_mut().zip(&rec[1..]) {
            *dst = px as f32 / 127.5 - 1.0;
        }
    }
    Ok(Dataset::new(images, labels))
}

/// Loads one CIFAR-10 binary batch file.
///
/// # Errors
///
/// Returns [`LoadError`] if the file cannot be read or is malformed.
pub fn load_batch(path: impl AsRef<Path>) -> Result<Dataset, LoadError> {
    parse(&fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(label: u8, fill: u8) -> Vec<u8> {
        let mut r = vec![fill; RECORD_BYTES];
        r[0] = label;
        r
    }

    #[test]
    fn parses_two_records() {
        let mut bytes = record(3, 0);
        bytes.extend(record(9, 255));
        let d = parse(&bytes).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.labels, vec![3, 9]);
        assert_eq!(d.images.at(0, 0, 0, 0), -1.0);
        assert_eq!(d.images.at(1, 2, 31, 31), 1.0);
    }

    #[test]
    fn rejects_truncated_file() {
        let bytes = vec![0u8; RECORD_BYTES - 1];
        assert!(matches!(parse(&bytes), Err(LoadError::BadLength { .. })));
    }

    #[test]
    fn rejects_bad_label() {
        let bytes = record(10, 0);
        let err = parse(&bytes).unwrap_err();
        assert!(matches!(
            err,
            LoadError::BadLabel {
                record: 0,
                label: 10
            }
        ));
        assert!(err.to_string().contains("invalid label"));
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_batch("/nonexistent/cifar.bin").unwrap_err();
        assert!(matches!(err, LoadError::Io(_)));
    }
}
