//! Datasets for the fault-injection experiments.
//!
//! The paper evaluates on CIFAR-10 with a pre-trained ResNet-18 from the
//! Tengine model zoo. Neither the dataset download nor the pre-trained model
//! is available in this environment, so the workspace ships **SynthCIFAR**
//! ([`SynthCifar`]): a fully deterministic, seeded generator of 32x32x3
//! images in 10 classes. Each class is a parameterized procedural texture
//! (stripes, checkerboards, rings, blobs, ...) with per-sample geometric and
//! photometric jitter plus Gaussian noise; the noise level makes classes
//! partially confusable so a small CNN lands in the paper's ~75% accuracy
//! regime instead of saturating at 100%.
//!
//! For users who do have the real data, [`cifar10`] loads the standard
//! CIFAR-10 binary format (`data_batch_*.bin` / `test_batch.bin`).
//!
//! # Examples
//!
//! ```
//! use nvfi_dataset::{SynthCifar, SynthCifarConfig};
//!
//! let data = SynthCifar::new(SynthCifarConfig { train: 64, test: 16, ..Default::default() })
//!     .generate();
//! assert_eq!(data.train.len(), 64);
//! assert_eq!(data.test.len(), 16);
//! assert_eq!(data.train.images.shape().c, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cifar10;
mod split;
mod synth;

pub use split::{Dataset, TrainTest, NUM_CLASSES};
pub use synth::{SynthCifar, SynthCifarConfig};
