//! SynthCIFAR: a deterministic procedural stand-in for CIFAR-10.

use std::f32::consts::PI;

use nvfi_tensor::{Shape4, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Dataset, TrainTest, NUM_CLASSES};

/// Configuration of the SynthCIFAR generator.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SynthCifarConfig {
    /// Number of training samples.
    pub train: usize,
    /// Number of test samples.
    pub test: usize,
    /// Image height/width (CIFAR uses 32).
    pub size: usize,
    /// RNG seed; the same seed always produces the same dataset.
    pub seed: u64,
    /// Gaussian pixel-noise standard deviation.
    pub noise: f32,
    /// Amplitude of per-sample geometric jitter (phase/offset/frequency).
    pub jitter: f32,
    /// Fraction of samples whose label is replaced by a uniform random
    /// class (applied to train *and* test splits). This bounds achievable
    /// test accuracy at `1 - label_noise * 9/10` no matter how strong the
    /// classifier — the knob that pins the experiments near the paper's
    /// 75.5% operating point (`0.27` gives a 75.7% ceiling).
    pub label_noise: f32,
}

impl Default for SynthCifarConfig {
    fn default() -> Self {
        SynthCifarConfig {
            train: 4000,
            test: 1000,
            size: 32,
            seed: 0xC1FA_0002,
            noise: 0.55,
            jitter: 1.0,
            label_noise: 0.0,
        }
    }
}

/// Generator for the synthetic 10-class dataset. See the crate docs for why
/// this substitutes CIFAR-10.
///
/// # Examples
///
/// ```
/// use nvfi_dataset::{SynthCifar, SynthCifarConfig};
/// let cfg = SynthCifarConfig { train: 10, test: 5, ..Default::default() };
/// let a = SynthCifar::new(cfg).generate();
/// let b = SynthCifar::new(cfg).generate();
/// assert_eq!(a.train.images.as_slice(), b.train.images.as_slice()); // deterministic
/// ```
#[derive(Clone, Debug)]
pub struct SynthCifar {
    config: SynthCifarConfig,
}

impl SynthCifar {
    /// Creates a generator with the given configuration.
    #[must_use]
    pub fn new(config: SynthCifarConfig) -> Self {
        SynthCifar { config }
    }

    /// The generator's configuration.
    #[must_use]
    pub fn config(&self) -> &SynthCifarConfig {
        &self.config
    }

    /// Generates the train/test split. Classes are balanced round-robin.
    #[must_use]
    pub fn generate(&self) -> TrainTest {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let train = self.generate_split(self.config.train, &mut rng);
        let test = self.generate_split(self.config.test, &mut rng);
        TrainTest { train, test }
    }

    fn generate_split(&self, n: usize, rng: &mut StdRng) -> Dataset {
        let size = self.config.size;
        let mut images = Tensor::zeros(Shape4::new(n, 3, size, size));
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = (i % NUM_CLASSES) as u8;
            self.render(class, rng, images.image_mut(i));
            // Label corruption: the image stays a genuine `class` sample,
            // but the recorded label may lie.
            let label = if self.config.label_noise > 0.0
                && rng.gen_range(0.0..1.0) < self.config.label_noise
            {
                rng.gen_range(0..NUM_CLASSES as u8)
            } else {
                class
            };
            labels.push(label);
        }
        Dataset::new(images, labels)
    }

    /// Renders one sample of `class` into a CHW buffer.
    fn render(&self, class: u8, rng: &mut StdRng, out: &mut [f32]) {
        let size = self.config.size;
        let j = self.config.jitter;
        // Per-sample jitter parameters.
        let phase: f32 = rng.gen_range(0.0..2.0 * PI) * j;
        let freq_jit: f32 = 1.0 + j * rng.gen_range(-0.15..0.15);
        let cx: f32 = 0.5 + j * rng.gen_range(-0.15..0.15);
        let cy: f32 = 0.5 + j * rng.gen_range(-0.15..0.15);
        let amp: f32 = 0.8 + j * rng.gen_range(-0.2..0.2);
        // Class-specific colour mixing: each class tints channels differently.
        let tint = CLASS_TINTS[class as usize];

        for c in 0..3usize {
            for y in 0..size {
                for x in 0..size {
                    let u = x as f32 / size as f32;
                    let v = y as f32 / size as f32;
                    let p = pattern(class, u, v, cx, cy, phase, freq_jit);
                    let noise = gaussian(rng) * self.config.noise;
                    let val = amp * p * tint[c] + noise;
                    out[(c * size + y) * size + x] = val.clamp(-2.0, 2.0);
                }
            }
        }
    }
}

/// Per-class channel tints (roughly unit energy, distinct directions).
const CLASS_TINTS: [[f32; 3]; NUM_CLASSES] = [
    [1.0, 0.6, 0.2],
    [0.2, 1.0, 0.6],
    [0.6, 0.2, 1.0],
    [1.0, 1.0, 0.3],
    [0.3, 1.0, 1.0],
    [1.0, 0.3, 1.0],
    [0.9, 0.9, 0.9],
    [1.0, 0.5, 0.5],
    [0.5, 0.5, 1.0],
    [0.7, 1.0, 0.4],
];

/// The base texture of each class at normalized coordinates `(u, v)`.
fn pattern(class: u8, u: f32, v: f32, cx: f32, cy: f32, phase: f32, fj: f32) -> f32 {
    let du = u - cx;
    let dv = v - cy;
    let r2 = du * du + dv * dv;
    match class {
        // Horizontal stripes.
        0 => (v * 6.0 * fj * 2.0 * PI + phase).sin(),
        // Vertical stripes.
        1 => (u * 6.0 * fj * 2.0 * PI + phase).sin(),
        // Diagonal stripes.
        2 => ((u + v) * 5.0 * fj * 2.0 * PI + phase).sin(),
        // Checkerboard.
        3 => {
            let a = (u * 4.0 * fj * 2.0 * PI + phase).sin();
            let b = (v * 4.0 * fj * 2.0 * PI + phase).sin();
            if a * b > 0.0 {
                1.0
            } else {
                -1.0
            }
        }
        // Concentric rings.
        4 => (r2.sqrt() * 12.0 * fj * 2.0 * PI + phase).sin(),
        // Centred Gaussian blob.
        5 => (2.0 * (-r2 * 14.0 * fj).exp()) - 0.6,
        // Corner-to-corner gradient.
        6 => (u + v - 1.0) * 1.6 + 0.2 * (phase).sin(),
        // Plus / cross shape.
        7 => {
            if du.abs() < 0.12 || dv.abs() < 0.12 {
                1.0
            } else {
                -0.8
            }
        }
        // High-frequency hatch.
        8 => ((u * 11.0 - v * 9.0) * fj * 2.0 * PI + phase).sin(),
        // Dark vignette disc.
        9 => {
            if r2 < 0.09 {
                -1.0
            } else {
                0.7
            }
        }
        _ => unreachable!("class out of range"),
    }
}

/// Standard normal via Box-Muller.
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_classes() {
        let data = SynthCifar::new(SynthCifarConfig {
            train: 100,
            test: 50,
            ..Default::default()
        })
        .generate();
        let h = data.train.class_histogram();
        assert!(h.iter().all(|&c| c == 10), "{h:?}");
        let ht = data.test.class_histogram();
        assert!(ht.iter().all(|&c| c == 5), "{ht:?}");
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let cfg = SynthCifarConfig {
            train: 20,
            test: 0,
            ..Default::default()
        };
        let a = SynthCifar::new(cfg).generate();
        let b = SynthCifar::new(cfg).generate();
        assert_eq!(a.train.images.as_slice(), b.train.images.as_slice());
        let c = SynthCifar::new(SynthCifarConfig { seed: 99, ..cfg }).generate();
        assert_ne!(a.train.images.as_slice(), c.train.images.as_slice());
    }

    #[test]
    fn label_noise_corrupts_roughly_the_requested_fraction() {
        let cfg = SynthCifarConfig {
            train: 1000,
            test: 0,
            label_noise: 0.3,
            ..Default::default()
        };
        let data = SynthCifar::new(cfg).generate();
        // True class is i % 10 by construction; count disagreements.
        let wrong = data
            .train
            .labels
            .iter()
            .enumerate()
            .filter(|(i, &l)| l != (i % NUM_CLASSES) as u8)
            .count();
        // 30% corrupted, of which 1/10 lands back on the true class:
        // expect ~27% disagreement.
        assert!((170..=370).contains(&wrong), "wrong = {wrong}");
        // Zero label noise keeps labels exact.
        let clean = SynthCifar::new(SynthCifarConfig {
            label_noise: 0.0,
            train: 100,
            test: 0,
            ..cfg
        })
        .generate();
        assert!(clean
            .train
            .labels
            .iter()
            .enumerate()
            .all(|(i, &l)| l == (i % NUM_CLASSES) as u8));
    }

    #[test]
    fn pixel_range_is_bounded() {
        let data = SynthCifar::new(SynthCifarConfig {
            train: 30,
            test: 0,
            ..Default::default()
        })
        .generate();
        assert!(data.train.images.as_slice().iter().all(|v| v.abs() <= 2.0));
        assert!(
            data.train.images.max_abs() > 0.1,
            "images should not be blank"
        );
    }

    #[test]
    fn noise_zero_gives_clean_patterns() {
        let cfg = SynthCifarConfig {
            train: 10,
            test: 0,
            noise: 0.0,
            jitter: 0.0,
            ..Default::default()
        };
        let a = SynthCifar::new(cfg).generate();
        let b = SynthCifar::new(SynthCifarConfig { seed: 123, ..cfg }).generate();
        // With zero noise and zero jitter, same-class images are identical
        // even across seeds.
        assert_eq!(a.train.images.image(0), b.train.images.image(0));
    }

    #[test]
    fn classes_are_separable_by_template_matching() {
        // A nearest-template classifier on noiseless class means must beat
        // 80% on modest noise — sanity that the task is learnable.
        let clean = SynthCifar::new(SynthCifarConfig {
            train: NUM_CLASSES,
            test: 0,
            noise: 0.0,
            jitter: 0.0,
            ..Default::default()
        })
        .generate();
        let noisy = SynthCifar::new(SynthCifarConfig {
            train: 200,
            test: 0,
            noise: 0.4,
            jitter: 0.0, // geometric jitter defeats raw template matching
            ..Default::default()
        })
        .generate();
        let mut correct = 0usize;
        for i in 0..noisy.train.len() {
            let img = noisy.train.images.image(i);
            let mut best = (f32::MAX, 0u8);
            for t in 0..NUM_CLASSES {
                let tmpl = clean.train.images.image(t);
                let d: f32 = img.iter().zip(tmpl).map(|(a, b)| (a - b) * (a - b)).sum();
                if d < best.0 {
                    best = (d, clean.train.labels[t]);
                }
            }
            if best.1 == noisy.train.labels[i] {
                correct += 1;
            }
        }
        let acc = correct as f32 / noisy.train.len() as f32;
        assert!(acc > 0.8, "template accuracy {acc}");
    }
}
