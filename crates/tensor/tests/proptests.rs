//! Property-based tests: the im2col + GEMM convolution path is bit-identical
//! to the naive reference, for both f32 and int8.

use nvfi_tensor::{conv, gemm, ConvGeom, Mat, Shape4, Tensor};
use proptest::prelude::*;

fn small_conv_case() -> impl Strategy<Value = (Tensor<i8>, Tensor<i8>, ConvGeom)> {
    (
        1usize..3,
        1usize..6,
        3usize..8,
        3usize..8,
        1usize..5,
        1usize..3,
        0usize..2,
    )
        .prop_flat_map(|(n, c, h, w, k, stride, pad)| {
            let r = 3.min(h + 2 * pad);
            let s = 3.min(w + 2 * pad);
            let input_shape = Shape4::new(n, c, h, w);
            let geom = ConvGeom::new(input_shape.with_n(1), k, r, s, stride, pad);
            let wlen = geom.weight_shape().len();
            (
                proptest::collection::vec(any::<i8>(), input_shape.len()),
                proptest::collection::vec(any::<i8>(), wlen),
                Just(geom),
                Just(input_shape),
            )
                .prop_map(move |(iv, wv, geom, ishape)| {
                    (
                        Tensor::from_vec(ishape, iv),
                        Tensor::from_vec(geom.weight_shape(), wv),
                        geom,
                    )
                })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn conv_i8_gemm_equals_naive((input, weights, geom) in small_conv_case()) {
        let a = conv::conv2d_i8_naive(&input, &weights, &geom);
        let b = conv::conv2d_i8(&input, &weights, &geom, 1);
        prop_assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn conv_i8_threaded_equals_naive((input, weights, geom) in small_conv_case()) {
        let a = conv::conv2d_i8_naive(&input, &weights, &geom);
        let b = conv::conv2d_i8(&input, &weights, &geom, 4);
        prop_assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn conv_f32_gemm_close_to_naive((input, weights, geom) in small_conv_case()) {
        let fi = input.map(|v| v as f32);
        let fw = weights.map(|v| v as f32);
        let a = conv::conv2d_f32_naive(&fi, &fw, &geom);
        let b = conv::conv2d_f32(&fi, &fw, &geom);
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-2_f32.max(x.abs() * 1e-5));
        }
    }

    /// GEMM distributes over addition in the int8 domain:
    /// A*(B) accumulated twice == 2 passes of gemm_acc.
    #[test]
    fn gemm_acc_accumulates(
        av in proptest::collection::vec(any::<i8>(), 6),
        bv in proptest::collection::vec(any::<i8>(), 6),
    ) {
        let a = Mat::from_vec(2, 3, av);
        let b = Mat::from_vec(3, 2, bv);
        let once = gemm::gemm_i8_i32(&a, &b);
        let mut twice = gemm::gemm_i8_i32(&a, &b);
        gemm::gemm_i8_i32_acc(&a, &b, &mut twice);
        for (o, t) in once.as_slice().iter().zip(twice.as_slice()) {
            prop_assert_eq!(o.wrapping_mul(2), *t);
        }
    }

    /// Transposition is an involution.
    #[test]
    fn transpose_involution(v in proptest::collection::vec(any::<i32>(), 12)) {
        let m = Mat::from_vec(3, 4, v);
        prop_assert_eq!(m.transposed().transposed(), m);
    }
}
