//! Dense NCHW tensor container.

use core::fmt;

use crate::Shape4;

/// A dense NCHW tensor over a copyable element type (`f32`, `i8`, `i32`).
///
/// # Examples
///
/// ```
/// use nvfi_tensor::{Shape4, Tensor};
/// let t = Tensor::from_fn(Shape4::new(1, 2, 2, 2), |_, c, h, w| (c * 4 + h * 2 + w) as i32);
/// assert_eq!(t.at(0, 1, 1, 1), 7);
/// assert_eq!(t.as_slice().len(), 8);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor<T> {
    shape: Shape4,
    data: Vec<T>,
}

impl<T: Copy + Default> Tensor<T> {
    /// Creates a tensor filled with `T::default()` (zero for all numeric
    /// types used in this workspace).
    #[must_use]
    pub fn zeros(shape: Shape4) -> Self {
        Tensor {
            shape,
            data: vec![T::default(); shape.len()],
        }
    }

    /// Creates a tensor from an existing dense NCHW buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.len()`.
    #[must_use]
    pub fn from_vec(shape: Shape4, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            shape.len(),
            "buffer length {} does not match shape {shape}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// Creates a tensor by evaluating `f(n, c, h, w)` at every coordinate.
    #[must_use]
    pub fn from_fn(shape: Shape4, mut f: impl FnMut(usize, usize, usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(shape.len());
        for n in 0..shape.n {
            for c in 0..shape.c {
                for h in 0..shape.h {
                    for w in 0..shape.w {
                        data.push(f(n, c, h, w));
                    }
                }
            }
        }
        Tensor { shape, data }
    }

    /// The tensor's shape.
    #[inline]
    #[must_use]
    pub fn shape(&self) -> Shape4 {
        self.shape
    }

    /// Element at `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    #[inline]
    #[must_use]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> T {
        self.data[self.shape.index(n, c, h, w)]
    }

    /// Writes the element at `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    #[inline]
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, v: T) {
        let idx = self.shape.index(n, c, h, w);
        self.data[idx] = v;
    }

    /// The raw dense buffer in NCHW order.
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the raw dense buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Borrow of one batch item as a contiguous CHW slice.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds.
    #[must_use]
    pub fn image(&self, n: usize) -> &[T] {
        assert!(
            n < self.shape.n,
            "batch index {n} out of bounds for {}",
            self.shape
        );
        let len = self.shape.image_len();
        &self.data[n * len..(n + 1) * len]
    }

    /// Mutable borrow of one batch item as a contiguous CHW slice.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds.
    pub fn image_mut(&mut self, n: usize) -> &mut [T] {
        assert!(
            n < self.shape.n,
            "batch index {n} out of bounds for {}",
            self.shape
        );
        let len = self.shape.image_len();
        &mut self.data[n * len..(n + 1) * len]
    }

    /// Creates a single-image tensor (`n == 1`) borrowing nothing: copies the
    /// `n`-th batch item out.
    #[must_use]
    pub fn slice_image(&self, n: usize) -> Tensor<T> {
        Tensor {
            shape: self.shape.with_n(1),
            data: self.image(n).to_vec(),
        }
    }

    /// Applies `f` elementwise, producing a new tensor of the same shape.
    #[must_use]
    pub fn map<U: Copy + Default>(&self, f: impl Fn(T) -> U) -> Tensor<U> {
        Tensor {
            shape: self.shape,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Fills the tensor with a constant.
    pub fn fill(&mut self, v: T) {
        self.data.fill(v);
    }
}

impl Tensor<f32> {
    /// Largest absolute value in the tensor (0.0 when empty). Used by the
    /// quantization calibrator.
    #[must_use]
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Sum of all elements.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&v| f64::from(v)).sum()
    }
}

impl<T: Copy + Default + fmt::Debug> fmt::Debug for Tensor<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preview: Vec<&T> = self.data.iter().take(8).collect();
        write!(f, "Tensor{} {:?}", self.shape, preview)?;
        if self.data.len() > 8 {
            write!(f, "... ({} elems)", self.data.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut t = Tensor::<i8>::zeros(Shape4::new(2, 2, 3, 3));
        assert!(t.as_slice().iter().all(|&v| v == 0));
        t.set(1, 1, 2, 2, -7);
        assert_eq!(t.at(1, 1, 2, 2), -7);
        assert_eq!(t.at(0, 0, 0, 0), 0);
    }

    #[test]
    fn from_fn_matches_indexing() {
        let t = Tensor::from_fn(Shape4::new(2, 3, 4, 5), |n, c, h, w| {
            (n * 1000 + c * 100 + h * 10 + w) as i32
        });
        assert_eq!(t.at(1, 2, 3, 4), 1234);
        assert_eq!(t.as_slice()[t.shape().index(1, 2, 3, 4)], 1234);
    }

    #[test]
    fn image_slicing() {
        let t = Tensor::from_fn(Shape4::new(3, 1, 2, 2), |n, _, _, _| n as f32);
        assert_eq!(t.image(1), &[1.0; 4]);
        let img = t.slice_image(2);
        assert_eq!(img.shape(), Shape4::new(1, 1, 2, 2));
        assert_eq!(img.as_slice(), &[2.0; 4]);
    }

    #[test]
    fn map_and_max_abs() {
        let t = Tensor::from_vec(Shape4::new(1, 1, 1, 4), vec![-3.0f32, 1.0, 2.5, -0.5]);
        assert_eq!(t.max_abs(), 3.0);
        let q = t.map(|v| v as i32);
        assert_eq!(q.as_slice(), &[-3, 1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_validates_length() {
        let _ = Tensor::from_vec(Shape4::new(1, 1, 2, 2), vec![0f32; 3]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn image_bounds_checked() {
        let t = Tensor::<f32>::zeros(Shape4::new(1, 1, 1, 1));
        let _ = t.image(1);
    }

    #[test]
    fn debug_is_nonempty() {
        let t = Tensor::<i32>::zeros(Shape4::new(1, 1, 1, 1));
        assert!(!format!("{t:?}").is_empty());
    }
}
