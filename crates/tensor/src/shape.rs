//! Shapes and convolution geometry.

use core::fmt;

/// The shape of a dense NCHW tensor: batch, channels, height, width.
///
/// # Examples
///
/// ```
/// use nvfi_tensor::Shape4;
/// let s = Shape4::new(2, 3, 32, 32);
/// assert_eq!(s.len(), 2 * 3 * 32 * 32);
/// assert_eq!(s.index(1, 2, 31, 31), s.len() - 1);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Shape4 {
    /// Batch size.
    pub n: usize,
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
}

impl Shape4 {
    /// Creates a shape.
    #[must_use]
    pub const fn new(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape4 { n, c, h, w }
    }

    /// Total number of elements.
    #[must_use]
    pub const fn len(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    /// Whether the shape holds no elements.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear index of `(n, c, h, w)` in the dense NCHW layout.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if any coordinate is out of bounds.
    #[inline]
    #[must_use]
    pub fn index(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(
            n < self.n && c < self.c && h < self.h && w < self.w,
            "index ({n},{c},{h},{w}) out of bounds for {self}"
        );
        ((n * self.c + c) * self.h + h) * self.w + w
    }

    /// Number of elements in one batch item (`c * h * w`).
    #[must_use]
    pub const fn image_len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Returns the same shape with a different batch size.
    #[must_use]
    pub const fn with_n(self, n: usize) -> Self {
        Shape4 { n, ..self }
    }
}

impl fmt::Display for Shape4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}x{}x{}x{}]", self.n, self.c, self.h, self.w)
    }
}

/// Geometry of a 2-D convolution: input/output shapes, kernel size, stride
/// and symmetric zero padding.
///
/// # Examples
///
/// ```
/// use nvfi_tensor::{ConvGeom, Shape4};
/// // A stride-2 3x3 convolution halving a 32x32 feature map:
/// let g = ConvGeom::new(Shape4::new(1, 16, 32, 32), 32, 3, 3, 2, 1);
/// assert_eq!((g.oh, g.ow), (16, 16));
/// assert_eq!(g.out_shape(), Shape4::new(1, 32, 16, 16));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct ConvGeom {
    /// Input shape (N, C, H, W).
    pub input: Shape4,
    /// Number of output channels (kernels), `K`.
    pub k: usize,
    /// Kernel height, `R`.
    pub r: usize,
    /// Kernel width, `S`.
    pub s: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Symmetric zero padding (same on all four sides).
    pub pad: usize,
    /// Output height.
    pub oh: usize,
    /// Output width.
    pub ow: usize,
}

impl ConvGeom {
    /// Computes the geometry for the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if the kernel (with padding) does not fit in the input, or if
    /// `stride == 0` — both indicate an ill-formed layer.
    #[must_use]
    pub fn new(input: Shape4, k: usize, r: usize, s: usize, stride: usize, pad: usize) -> Self {
        assert!(stride > 0, "convolution stride must be positive");
        assert!(k > 0 && r > 0 && s > 0, "convolution dims must be positive");
        assert!(
            input.h + 2 * pad >= r && input.w + 2 * pad >= s,
            "kernel {r}x{s} with pad {pad} does not fit input {input}"
        );
        let oh = (input.h + 2 * pad - r) / stride + 1;
        let ow = (input.w + 2 * pad - s) / stride + 1;
        ConvGeom {
            input,
            k,
            r,
            s,
            stride,
            pad,
            oh,
            ow,
        }
    }

    /// Shape of the convolution output.
    #[must_use]
    pub const fn out_shape(&self) -> Shape4 {
        Shape4::new(self.input.n, self.k, self.oh, self.ow)
    }

    /// Shape of the weight tensor `(K, C, R, S)`.
    #[must_use]
    pub const fn weight_shape(&self) -> Shape4 {
        Shape4::new(self.k, self.input.c, self.r, self.s)
    }

    /// Number of multiply-accumulate operations per batch item.
    #[must_use]
    pub const fn macs_per_image(&self) -> u64 {
        (self.k * self.input.c * self.r * self.s * self.oh * self.ow) as u64
    }
}

impl fmt::Display for ConvGeom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conv {}x{}x{} -> {}x{}x{} (k={} {}x{} s={} p={})",
            self.input.c,
            self.input.h,
            self.input.w,
            self.k,
            self.oh,
            self.ow,
            self.k,
            self.r,
            self.s,
            self.stride,
            self.pad
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_row_major_nchw() {
        let s = Shape4::new(2, 3, 4, 5);
        assert_eq!(s.index(0, 0, 0, 0), 0);
        assert_eq!(s.index(0, 0, 0, 1), 1);
        assert_eq!(s.index(0, 0, 1, 0), 5);
        assert_eq!(s.index(0, 1, 0, 0), 20);
        assert_eq!(s.index(1, 0, 0, 0), 60);
        assert_eq!(s.index(1, 2, 3, 4), 119);
    }

    #[test]
    fn conv_geometry_same_padding() {
        let g = ConvGeom::new(Shape4::new(1, 3, 32, 32), 16, 3, 3, 1, 1);
        assert_eq!((g.oh, g.ow), (32, 32));
        assert_eq!(g.weight_shape(), Shape4::new(16, 3, 3, 3));
        assert_eq!(g.macs_per_image(), 16 * 3 * 9 * 32 * 32);
    }

    #[test]
    fn conv_geometry_1x1() {
        let g = ConvGeom::new(Shape4::new(4, 64, 8, 8), 128, 1, 1, 1, 0);
        assert_eq!(g.out_shape(), Shape4::new(4, 128, 8, 8));
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_rejected() {
        let _ = ConvGeom::new(Shape4::new(1, 1, 8, 8), 1, 3, 3, 0, 1);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_kernel_rejected() {
        let _ = ConvGeom::new(Shape4::new(1, 1, 2, 2), 1, 5, 5, 1, 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Shape4::new(1, 2, 3, 4).to_string(), "[1x2x3x4]");
        let g = ConvGeom::new(Shape4::new(1, 3, 8, 8), 4, 3, 3, 1, 1);
        assert!(g.to_string().contains("conv"));
    }
}
