//! Dense GEMM kernels: f32 for training, i8 -> i32 for quantized inference.
//!
//! The int8 kernel accumulates with **wrapping** i32 addition so that the CPU
//! reference executor and the accelerator model share overflow semantics even
//! under injected faults that blow up the dynamic range. Wrapping addition is
//! associative and commutative mod 2^32, which is what licenses the blocked /
//! unrolled schedule below to be **bit-identical** to the naive triple loop.
//!
//! The hot kernel is [`gemm_i8_i32_into`]: a register-blocked microkernel on
//! raw slices. Output rows are processed four at a time and columns in
//! fixed-width tiles (32, then 16, then a scalar tail) whose `[i32; T]`
//! accumulators stay in vector registers across the whole `k` loop — each
//! output element is loaded and stored once per GEMM, and each `b` element
//! serves four output rows. Leftover rows (`m % 4`) fall back to a
//! single-row kernel that walks `COL_BLOCK`-wide panels with four fused
//! `k`-steps.

use crate::Mat;

/// Output-column panel width of the i8 microkernel. Four i8 `b`-panel rows
/// (4 x 768 B) plus one i32 output slab (3 KiB) fit comfortably in a 32 KiB
/// L1 alongside the streaming `a` row.
const COL_BLOCK: usize = 768;

/// `out += a * b` for f32 matrices.
///
/// The f32 kernel keeps the seed's straight loop order: float addition is
/// not associative, so re-blocking it would change results.
///
/// # Panics
///
/// Panics if the dimensions do not agree (`a: MxK`, `b: KxN`, `out: MxN`).
pub fn gemm_f32_acc(a: &Mat<f32>, b: &Mat<f32>, out: &mut Mat<f32>) {
    let (m, k, n) = check_dims(
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols(),
        out.rows(),
        out.cols(),
    );
    let bd = b.as_slice();
    for i in 0..m {
        let arow = a.row(i);
        let orow = out.row_mut(i);
        for p in 0..k {
            let av = arow[p];
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// `a * b` for f32 matrices.
#[must_use]
pub fn gemm_f32(a: &Mat<f32>, b: &Mat<f32>) -> Mat<f32> {
    let mut out = Mat::zeros(a.rows(), b.cols());
    gemm_f32_acc(a, b, &mut out);
    out
}

/// `out = out (+) a * b` on raw row-major slices with wrapping i32
/// accumulation: `a` is `m x k`, `b` is `k x n`, `out` is `m x n`.
///
/// This is the workspace's int8 inference microkernel; the `Mat`-based
/// wrappers and the convolution path all funnel here.
///
/// # Panics
///
/// Panics if the slice lengths do not match the dimensions.
pub fn gemm_i8_i32_into(a: &[i8], b: &[i8], out: &mut [i32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "a length does not match {m}x{k}");
    assert_eq!(b.len(), k * n, "b length does not match {k}x{n}");
    assert_eq!(out.len(), m * n, "out length does not match {m}x{n}");
    if k == 0 || n == 0 {
        return;
    }
    // 4-row register blocking: the four output rows of a quad share every
    // `b` panel load, quartering B-operand traffic.
    let quads = m / 4;
    for q in 0..quads {
        let i = q * 4;
        gemm_quad_blocked(
            &a[i * k..(i + 4) * k],
            b,
            &mut out[i * n..(i + 4) * n],
            k,
            n,
        );
    }
    for i in quads * 4..m {
        gemm_row_blocked(
            &a[i * k..(i + 1) * k],
            b,
            &mut out[i * n..(i + 1) * n],
            k,
            n,
        );
    }
}

/// Four output rows of the blocked microkernel: `orow4 (+)= arow4 * b`,
/// where `arow4` holds four consecutive rows of `a` and `orow4` the four
/// matching output rows. Columns are walked in fixed-width register tiles
/// (32-wide, then 16-wide, then a scalar tail): one tile is four `[i32; T]`
/// accumulators that live in vector registers across the whole `k` loop, so
/// every output element is loaded and stored exactly once per GEMM, and
/// each `b` element loaded serves four rows.
#[inline]
fn gemm_quad_blocked(arow4: &[i8], b: &[i8], orow4: &mut [i32], k: usize, n: usize) {
    let (a0, arest) = arow4.split_at(k);
    let (a1, arest) = arest.split_at(k);
    let (a2, a3) = arest.split_at(k);
    let a4 = [a0, a1, a2, a3];
    let (o0, orest) = orow4.split_at_mut(n);
    let (o1, orest) = orest.split_at_mut(n);
    let (o2, o3) = orest.split_at_mut(n);
    let mut o4 = [o0, o1, o2, o3];
    let mut j = 0;
    while j + 32 <= n {
        gemm_quad_tile::<32>(&a4, b, &mut o4, k, n, j);
        j += 32;
    }
    while j + 16 <= n {
        gemm_quad_tile::<16>(&a4, b, &mut o4, k, n, j);
        j += 16;
    }
    // Column tail (n % 16): scalar, still four rows per b element.
    if j < n {
        let [o0, o1, o2, o3] = &mut o4;
        for p in 0..k {
            let v0 = a0[p] as i32;
            let v1 = a1[p] as i32;
            let v2 = a2[p] as i32;
            let v3 = a3[p] as i32;
            if v0 | v1 | v2 | v3 == 0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for t in j..n {
                let bv = brow[t] as i32;
                o0[t] = o0[t].wrapping_add(v0.wrapping_mul(bv));
                o1[t] = o1[t].wrapping_add(v1.wrapping_mul(bv));
                o2[t] = o2[t].wrapping_add(v2.wrapping_mul(bv));
                o3[t] = o3[t].wrapping_add(v3.wrapping_mul(bv));
            }
        }
    }
}

/// One 4 x `T` register tile of [`gemm_quad_blocked`] at column offset `j`.
#[inline]
fn gemm_quad_tile<const T: usize>(
    a4: &[&[i8]; 4],
    b: &[i8],
    o4: &mut [&mut [i32]; 4],
    k: usize,
    n: usize,
    j: usize,
) {
    let [a0, a1, a2, a3] = *a4;
    let mut c0 = [0i32; T];
    let mut c1 = [0i32; T];
    let mut c2 = [0i32; T];
    let mut c3 = [0i32; T];
    c0.copy_from_slice(&o4[0][j..j + T]);
    c1.copy_from_slice(&o4[1][j..j + T]);
    c2.copy_from_slice(&o4[2][j..j + T]);
    c3.copy_from_slice(&o4[3][j..j + T]);
    for p in 0..k {
        let v0 = a0[p] as i32;
        let v1 = a1[p] as i32;
        let v2 = a2[p] as i32;
        let v3 = a3[p] as i32;
        if v0 | v1 | v2 | v3 == 0 {
            continue;
        }
        let bs = &b[p * n + j..p * n + j + T];
        for t in 0..T {
            let bv = bs[t] as i32;
            c0[t] = c0[t].wrapping_add(v0.wrapping_mul(bv));
            c1[t] = c1[t].wrapping_add(v1.wrapping_mul(bv));
            c2[t] = c2[t].wrapping_add(v2.wrapping_mul(bv));
            c3[t] = c3[t].wrapping_add(v3.wrapping_mul(bv));
        }
    }
    o4[0][j..j + T].copy_from_slice(&c0);
    o4[1][j..j + T].copy_from_slice(&c1);
    o4[2][j..j + T].copy_from_slice(&c2);
    o4[3][j..j + T].copy_from_slice(&c3);
}

/// One output row of the blocked microkernel: `orow (+)= arow * b`.
#[inline]
fn gemm_row_blocked(arow: &[i8], b: &[i8], orow: &mut [i32], k: usize, n: usize) {
    let mut j0 = 0;
    while j0 < n {
        let jn = (j0 + COL_BLOCK).min(n);
        let mut p = 0;
        // Main loop: four fused k-steps per pass over the output panel.
        while p + 4 <= k {
            let a0 = arow[p] as i32;
            let a1 = arow[p + 1] as i32;
            let a2 = arow[p + 2] as i32;
            let a3 = arow[p + 3] as i32;
            if a0 | a1 | a2 | a3 != 0 {
                let b0 = &b[p * n + j0..p * n + jn];
                let b1 = &b[(p + 1) * n + j0..(p + 1) * n + jn];
                let b2 = &b[(p + 2) * n + j0..(p + 2) * n + jn];
                let b3 = &b[(p + 3) * n + j0..(p + 3) * n + jn];
                let o = &mut orow[j0..jn];
                for ((((o, &v0), &v1), &v2), &v3) in o.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
                    // Wrapping adds in ascending-p order: bit-identical to
                    // the naive accumulation order within this panel.
                    let s = o
                        .wrapping_add(a0.wrapping_mul(v0 as i32))
                        .wrapping_add(a1.wrapping_mul(v1 as i32))
                        .wrapping_add(a2.wrapping_mul(v2 as i32))
                        .wrapping_add(a3.wrapping_mul(v3 as i32));
                    *o = s;
                }
            }
            p += 4;
        }
        // k tail.
        while p < k {
            let av = arow[p] as i32;
            if av != 0 {
                let brow = &b[p * n + j0..p * n + jn];
                let o = &mut orow[j0..jn];
                for (o, &bv) in o.iter_mut().zip(brow) {
                    *o = o.wrapping_add(av * bv as i32);
                }
            }
            p += 1;
        }
        j0 = jn;
    }
}

/// `out = out (+) a * b` for int8 inputs with wrapping i32 accumulation.
///
/// # Panics
///
/// Panics if the dimensions do not agree.
pub fn gemm_i8_i32_acc(a: &Mat<i8>, b: &Mat<i8>, out: &mut Mat<i32>) {
    let (m, k, n) = check_dims(
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols(),
        out.rows(),
        out.cols(),
    );
    gemm_i8_i32_into(a.as_slice(), b.as_slice(), out.as_mut_slice(), m, k, n);
}

/// `a * b` for int8 inputs, producing wrapping i32 accumulators.
#[must_use]
pub fn gemm_i8_i32(a: &Mat<i8>, b: &Mat<i8>) -> Mat<i32> {
    let mut out = Mat::zeros(a.rows(), b.cols());
    gemm_i8_i32_acc(a, b, &mut out);
    out
}

/// Multi-threaded variant of [`gemm_i8_i32`]: rows of `a` are sharded over
/// at most `threads` OS threads (std scoped threads). With `threads <= 1`
/// this is the single-threaded kernel.
///
/// `threads` is clamped to the row count, so degenerate requests
/// (`threads > m`, or `m == 0`) never spawn idle workers or build
/// zero-sized row chunks.
///
/// # Panics
///
/// Panics if the dimensions do not agree.
#[must_use]
pub fn gemm_i8_i32_threaded(a: &Mat<i8>, b: &Mat<i8>, threads: usize) -> Mat<i32> {
    assert_eq!(
        a.cols(),
        b.rows(),
        "inner dimensions disagree: {} vs {}",
        a.cols(),
        b.rows()
    );
    let mut out: Mat<i32> = Mat::zeros(a.rows(), b.cols());
    gemm_i8_i32_threaded_into(
        a.as_slice(),
        b.as_slice(),
        out.as_mut_slice(),
        a.rows(),
        a.cols(),
        b.cols(),
        threads,
    );
    out
}

/// Raw-slice variant of [`gemm_i8_i32_threaded`] accumulating into `out`.
///
/// # Panics
///
/// Panics if the slice lengths do not match the dimensions.
pub fn gemm_i8_i32_threaded_into(
    a: &[i8],
    b: &[i8],
    out: &mut [i32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    // Clamp the shard count: more workers than rows would make
    // `rows_per * n` either zero (chunks_mut panics) or leave threads
    // with no rows. One row per worker is the finest useful split, and
    // empty operands (m == 0 or n == 0) never reach the sharded path.
    let threads = threads.min(m);
    if threads <= 1 || m < 2 || n == 0 {
        gemm_i8_i32_into(a, b, out, m, k, n);
        return;
    }
    assert_eq!(a.len(), m * k, "a length does not match {m}x{k}");
    assert_eq!(b.len(), k * n, "b length does not match {k}x{n}");
    assert_eq!(out.len(), m * n, "out length does not match {m}x{n}");
    let rows_per = m.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, chunk) in out.chunks_mut(rows_per * n).enumerate() {
            let row0 = t * rows_per;
            scope.spawn(move || {
                let rows_here = chunk.len() / n;
                let a_rows = &a[row0 * k..(row0 + rows_here) * k];
                gemm_i8_i32_into(a_rows, b, chunk, rows_here, k, n);
            });
        }
    });
}

fn check_dims(
    am: usize,
    ak: usize,
    bk: usize,
    bn: usize,
    om: usize,
    on: usize,
) -> (usize, usize, usize) {
    assert_eq!(ak, bk, "inner dimensions disagree: {ak} vs {bk}");
    assert_eq!(am, om, "output rows disagree: {am} vs {om}");
    assert_eq!(bn, on, "output cols disagree: {bn} vs {on}");
    (am, ak, bn)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_i32(a: &Mat<i8>, b: &Mat<i8>) -> Mat<i32> {
        let mut out = Mat::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0i32;
                for p in 0..a.cols() {
                    acc = acc.wrapping_add(a.at(i, p) as i32 * b.at(p, j) as i32);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    #[test]
    fn small_known_product() {
        let a = Mat::from_vec(2, 2, vec![1i8, 2, 3, 4]);
        let b = Mat::from_vec(2, 2, vec![5i8, 6, 7, 8]);
        let c = gemm_i8_i32(&a, &b);
        assert_eq!(c.as_slice(), &[19, 22, 43, 50]);
    }

    #[test]
    fn matches_naive_reference() {
        let a = Mat::from_vec(3, 4, (0..12).map(|v| (v as i8).wrapping_mul(7)).collect());
        let b = Mat::from_vec(4, 5, (0..20).map(|v| (v as i8).wrapping_sub(9)).collect());
        assert_eq!(gemm_i8_i32(&a, &b).as_slice(), naive_i32(&a, &b).as_slice());
    }

    #[test]
    fn blocked_kernel_matches_naive_across_shapes() {
        // Exercise the k-tail (k % 4 != 0), the column-panel boundary
        // (n > COL_BLOCK) and saturating products.
        for (m, k, n) in [(1, 1, 1), (3, 7, 5), (5, 9, 900), (2, 4, 769), (8, 6, 768)] {
            let a = Mat::from_vec(m, k, (0..m * k).map(|v| (v * 37 % 251) as i8).collect());
            let b = Mat::from_vec(k, n, (0..k * n).map(|v| (v * 91 % 253) as i8).collect());
            assert_eq!(
                gemm_i8_i32(&a, &b).as_slice(),
                naive_i32(&a, &b).as_slice(),
                "shape {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn wrapping_overflow_matches_naive() {
        // All -128 * -128 products: k large enough to overflow i32 is not
        // reachable with these sizes, but wrapping is still exercised via
        // accumulation into a pre-wrapped output.
        let a = Mat::from_vec(1, 8, vec![-128i8; 8]);
        let b = Mat::from_vec(8, 3, vec![-128i8; 24]);
        let mut out = Mat::from_vec(1, 3, vec![i32::MAX; 3]);
        gemm_i8_i32_acc(&a, &b, &mut out);
        let want = (i32::MAX).wrapping_add(8 * 128 * 128);
        assert_eq!(out.as_slice(), &[want; 3]);
    }

    #[test]
    fn threaded_matches_single() {
        let a = Mat::from_vec(7, 9, (0..63).map(|v| (v * 3 % 251) as i8).collect());
        let b = Mat::from_vec(9, 5, (0..45).map(|v| (v * 5 % 251) as i8).collect());
        let single = gemm_i8_i32(&a, &b);
        for threads in [1, 2, 3, 4, 8, 16] {
            assert_eq!(
                gemm_i8_i32_threaded(&a, &b, threads).as_slice(),
                single.as_slice(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn threaded_more_threads_than_rows() {
        // Regression: threads > m used to rely on div_ceil keeping
        // rows_per >= 1 by accident; the clamp makes it explicit.
        let a = Mat::from_vec(2, 3, vec![1i8, 2, 3, 4, 5, 6]);
        let b = Mat::from_vec(3, 4, (0..12).map(|v| v as i8).collect());
        let single = gemm_i8_i32(&a, &b);
        for threads in [3, 7, 64, 1000] {
            assert_eq!(
                gemm_i8_i32_threaded(&a, &b, threads).as_slice(),
                single.as_slice(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn threaded_zero_rows() {
        // Regression: m == 0 must not panic in chunks_mut(0).
        let a = Mat::<i8>::zeros(0, 5);
        let b = Mat::<i8>::zeros(5, 4);
        for threads in [1, 2, 8] {
            let out = gemm_i8_i32_threaded(&a, &b, threads);
            assert_eq!((out.rows(), out.cols()), (0, 4), "threads={threads}");
            assert!(out.as_slice().is_empty());
        }
    }

    #[test]
    fn threaded_zero_cols() {
        // Regression: n == 0 must not reach the sharded path either — the
        // m clamp alone still left chunks_mut(rows_per * 0).
        let a = Mat::from_vec(4, 3, (0..12).map(|v| v as i8).collect());
        let b = Mat::<i8>::zeros(3, 0);
        for threads in [1, 2, 8] {
            let out = gemm_i8_i32_threaded(&a, &b, threads);
            assert_eq!((out.rows(), out.cols()), (4, 0), "threads={threads}");
            assert!(out.as_slice().is_empty());
        }
    }

    #[test]
    fn f32_identity() {
        let a = Mat::from_vec(2, 2, vec![1.0f32, 0.0, 0.0, 1.0]);
        let b = Mat::from_vec(2, 3, vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(gemm_f32(&a, &b).as_slice(), b.as_slice());
    }

    #[test]
    fn f32_accumulates() {
        let a = Mat::from_vec(1, 1, vec![2.0f32]);
        let b = Mat::from_vec(1, 1, vec![3.0f32]);
        let mut out = Mat::from_vec(1, 1, vec![10.0f32]);
        gemm_f32_acc(&a, &b, &mut out);
        assert_eq!(out.at(0, 0), 16.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = Mat::<i8>::zeros(2, 3);
        let b = Mat::<i8>::zeros(2, 3);
        let _ = gemm_i8_i32(&a, &b);
    }
}
