//! Dense GEMM kernels: f32 for training, i8 -> i32 for quantized inference.
//!
//! The int8 kernel accumulates with **wrapping** i32 addition so that the CPU
//! reference executor and the accelerator model share overflow semantics even
//! under injected faults that blow up the dynamic range.

use crate::Mat;

/// `out += a * b` for f32 matrices.
///
/// # Panics
///
/// Panics if the dimensions do not agree (`a: MxK`, `b: KxN`, `out: MxN`).
pub fn gemm_f32_acc(a: &Mat<f32>, b: &Mat<f32>, out: &mut Mat<f32>) {
    let (m, k, n) = check_dims(a.rows(), a.cols(), b.rows(), b.cols(), out.rows(), out.cols());
    let bd = b.as_slice();
    for i in 0..m {
        let arow = a.row(i);
        let orow = out.row_mut(i);
        for p in 0..k {
            let av = arow[p];
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// `a * b` for f32 matrices.
#[must_use]
pub fn gemm_f32(a: &Mat<f32>, b: &Mat<f32>) -> Mat<f32> {
    let mut out = Mat::zeros(a.rows(), b.cols());
    gemm_f32_acc(a, b, &mut out);
    out
}

/// `out = out (+) a * b` for int8 inputs with wrapping i32 accumulation.
///
/// # Panics
///
/// Panics if the dimensions do not agree.
pub fn gemm_i8_i32_acc(a: &Mat<i8>, b: &Mat<i8>, out: &mut Mat<i32>) {
    let (m, k, n) = check_dims(a.rows(), a.cols(), b.rows(), b.cols(), out.rows(), out.cols());
    let bd = b.as_slice();
    for i in 0..m {
        let arow = a.row(i);
        let orow = out.row_mut(i);
        for p in 0..k {
            let av = arow[p] as i32;
            if av == 0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o = o.wrapping_add(av * bv as i32);
            }
        }
    }
}

/// `a * b` for int8 inputs, producing wrapping i32 accumulators.
#[must_use]
pub fn gemm_i8_i32(a: &Mat<i8>, b: &Mat<i8>) -> Mat<i32> {
    let mut out = Mat::zeros(a.rows(), b.cols());
    gemm_i8_i32_acc(a, b, &mut out);
    out
}

/// Multi-threaded variant of [`gemm_i8_i32`]: rows of `a` are sharded over
/// `threads` OS threads (crossbeam scoped). With `threads <= 1` this is the
/// single-threaded kernel.
///
/// # Panics
///
/// Panics if the dimensions do not agree.
#[must_use]
pub fn gemm_i8_i32_threaded(a: &Mat<i8>, b: &Mat<i8>, threads: usize) -> Mat<i32> {
    if threads <= 1 || a.rows() < 2 {
        return gemm_i8_i32(a, b);
    }
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    assert_eq!(k, b.rows(), "inner dimensions disagree: {k} vs {}", b.rows());
    let mut out: Mat<i32> = Mat::zeros(m, n);
    let rows_per = m.div_ceil(threads);
    let ad = a.as_slice();
    let bd = b.as_slice();
    crossbeam::thread::scope(|scope| {
        for (t, chunk) in out.as_mut_slice().chunks_mut(rows_per * n).enumerate() {
            let row0 = t * rows_per;
            scope.spawn(move |_| {
                let rows_here = chunk.len() / n;
                for i in 0..rows_here {
                    let arow = &ad[(row0 + i) * k..(row0 + i + 1) * k];
                    let orow = &mut chunk[i * n..(i + 1) * n];
                    for p in 0..k {
                        let av = arow[p] as i32;
                        if av == 0 {
                            continue;
                        }
                        let brow = &bd[p * n..(p + 1) * n];
                        for (o, &bv) in orow.iter_mut().zip(brow) {
                            *o = o.wrapping_add(av * bv as i32);
                        }
                    }
                }
            });
        }
    })
    .expect("gemm worker thread panicked");
    out
}

fn check_dims(
    am: usize,
    ak: usize,
    bk: usize,
    bn: usize,
    om: usize,
    on: usize,
) -> (usize, usize, usize) {
    assert_eq!(ak, bk, "inner dimensions disagree: {ak} vs {bk}");
    assert_eq!(am, om, "output rows disagree: {am} vs {om}");
    assert_eq!(bn, on, "output cols disagree: {bn} vs {on}");
    (am, ak, bn)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_i32(a: &Mat<i8>, b: &Mat<i8>) -> Mat<i32> {
        let mut out = Mat::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0i32;
                for p in 0..a.cols() {
                    acc = acc.wrapping_add(a.at(i, p) as i32 * b.at(p, j) as i32);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    #[test]
    fn small_known_product() {
        let a = Mat::from_vec(2, 2, vec![1i8, 2, 3, 4]);
        let b = Mat::from_vec(2, 2, vec![5i8, 6, 7, 8]);
        let c = gemm_i8_i32(&a, &b);
        assert_eq!(c.as_slice(), &[19, 22, 43, 50]);
    }

    #[test]
    fn matches_naive_reference() {
        let a = Mat::from_vec(3, 4, (0..12).map(|v| (v as i8).wrapping_mul(7)).collect());
        let b = Mat::from_vec(4, 5, (0..20).map(|v| (v as i8).wrapping_sub(9)).collect());
        assert_eq!(gemm_i8_i32(&a, &b).as_slice(), naive_i32(&a, &b).as_slice());
    }

    #[test]
    fn threaded_matches_single() {
        let a = Mat::from_vec(7, 9, (0..63).map(|v| (v * 3 % 251) as i8).collect());
        let b = Mat::from_vec(9, 5, (0..45).map(|v| (v * 5 % 251) as i8).collect());
        let single = gemm_i8_i32(&a, &b);
        for threads in [1, 2, 3, 4, 8, 16] {
            assert_eq!(
                gemm_i8_i32_threaded(&a, &b, threads).as_slice(),
                single.as_slice(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn f32_identity() {
        let a = Mat::from_vec(2, 2, vec![1.0f32, 0.0, 0.0, 1.0]);
        let b = Mat::from_vec(2, 3, vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(gemm_f32(&a, &b).as_slice(), b.as_slice());
    }

    #[test]
    fn f32_accumulates() {
        let a = Mat::from_vec(1, 1, vec![2.0f32]);
        let b = Mat::from_vec(1, 1, vec![3.0f32]);
        let mut out = Mat::from_vec(1, 1, vec![10.0f32]);
        gemm_f32_acc(&a, &b, &mut out);
        assert_eq!(out.at(0, 0), 16.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = Mat::<i8>::zeros(2, 3);
        let b = Mat::<i8>::zeros(2, 3);
        let _ = gemm_i8_i32(&a, &b);
    }
}
