//! NCHW tensor containers and the convolution kernels shared by the float
//! trainer, the int8 CPU reference executor and the accelerator model.
//!
//! Everything in this workspace that touches image data flows through this
//! crate, so layout and arithmetic conventions are defined once:
//!
//! * tensors are dense **NCHW** ([`Shape4`], [`Tensor`]);
//! * matrices are dense row-major ([`Mat`]);
//! * convolution is implemented both as a naive reference
//!   ([`conv::conv2d_f32_naive`], [`conv::conv2d_i8_naive`]) and as
//!   im2col + GEMM ([`im2col`], [`gemm`]) — the two are property-tested to be
//!   identical;
//! * int8 convolution accumulates into `i32` with **wrapping** addition,
//!   matching the hardware accumulator (relevant when injected faults push
//!   sums far beyond normal dynamic range).
//!
//! # Examples
//!
//! ```
//! use nvfi_tensor::{Shape4, Tensor};
//!
//! let mut t = Tensor::<f32>::zeros(Shape4::new(1, 3, 32, 32));
//! t.set(0, 2, 31, 31, 1.5);
//! assert_eq!(t.at(0, 2, 31, 31), 1.5);
//! assert_eq!(t.shape().len(), 3 * 32 * 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conv;
pub mod gemm;
pub mod im2col;
mod mat;
pub mod pool;
mod shape;
mod tensor;

pub use mat::{Mat, MatRef};
pub use shape::{ConvGeom, Shape4};
pub use tensor::Tensor;
