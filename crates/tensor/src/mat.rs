//! Dense row-major matrix, the working set of im2col + GEMM convolution.

use core::fmt;

/// A dense row-major matrix.
///
/// # Examples
///
/// ```
/// use nvfi_tensor::Mat;
/// let mut m = Mat::<i32>::zeros(2, 3);
/// m.set(1, 2, 42);
/// assert_eq!(m.at(1, 2), 42);
/// assert_eq!(m.row(1), &[0, 0, 42]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Mat<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Mat<T> {
    /// Creates a zero-filled matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }

    /// Creates a matrix from a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer does not match {rows}x{cols}"
        );
        Mat { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    #[must_use]
    pub fn at(&self, r: usize, c: usize) -> T {
        assert!(
            r < self.rows && c < self.cols,
            "({r},{c}) out of {0}x{1}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c]
    }

    /// Writes the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        assert!(
            r < self.rows && c < self.cols,
            "({r},{c}) out of {0}x{1}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of one row.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    #[must_use]
    pub fn row(&self, r: usize) -> &[T] {
        assert!(r < self.rows, "row {r} out of {}", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of one row.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        assert!(r < self.rows, "row {r} out of {}", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The whole row-major buffer.
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the whole row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix and returns the buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// The transpose (copies).
    #[must_use]
    pub fn transposed(&self) -> Mat<T> {
        let mut out = Mat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Fills with a constant.
    pub fn fill(&mut self, v: T) {
        self.data.fill(v);
    }
}

impl<T: Copy + Default + fmt::Debug> fmt::Debug for Mat<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mat[{}x{}]", self.rows, self.cols)
    }
}

/// A borrowed dense row-major matrix view — the zero-copy counterpart of
/// [`Mat`], used where an existing buffer (a weight tensor, an arena entry)
/// already *is* the row-major operand and copying it into an owned `Mat`
/// would be pure overhead.
#[derive(Copy, Clone)]
pub struct MatRef<'a, T> {
    rows: usize,
    cols: usize,
    data: &'a [T],
}

impl<'a, T: Copy> MatRef<'a, T> {
    /// Creates a view over a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_slice(rows: usize, cols: usize, data: &'a [T]) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer does not match {rows}x{cols}"
        );
        MatRef { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    #[must_use]
    pub fn at(&self, r: usize, c: usize) -> T {
        assert!(
            r < self.rows && c < self.cols,
            "({r},{c}) out of {0}x{1}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c]
    }

    /// Borrow of one row.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    #[must_use]
    pub fn row(&self, r: usize) -> &'a [T] {
        assert!(r < self.rows, "row {r} out of {}", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The whole row-major buffer.
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &'a [T] {
        self.data
    }

    /// Copies the view into an owned [`Mat`].
    #[must_use]
    pub fn to_mat(&self) -> Mat<T>
    where
        T: Default,
    {
        Mat::from_vec(self.rows, self.cols, self.data.to_vec())
    }
}

impl<T: Copy + fmt::Debug> fmt::Debug for MatRef<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MatRef[{}x{}]", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_rows() {
        let m = Mat::from_vec(2, 3, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(m.at(0, 2), 3);
        assert_eq!(m.row(1), &[4, 5, 6]);
    }

    #[test]
    fn transpose() {
        let m = Mat::from_vec(2, 3, vec![1, 2, 3, 4, 5, 6]);
        let t = m.transposed();
        assert_eq!((t.rows(), t.cols()), (3, 2));
        assert_eq!(t.as_slice(), &[1, 4, 2, 5, 3, 6]);
        assert_eq!(t.transposed(), m);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn bounds_checked() {
        let m = Mat::<i8>::zeros(2, 2);
        let _ = m.at(2, 0);
    }
}
