//! 2-D convolution: naive reference implementations and the im2col + GEMM
//! fast path. The two are property-tested against each other; the naive
//! versions are the semantic ground truth for the whole workspace.

use crate::{gemm, im2col, ConvGeom, MatRef, Tensor};

/// Reinterprets a `(K, C, R, S)` weight tensor as the `K x (C*R*S)` GEMM
/// operand. This is a **zero-copy** view: the dense row-major NCHW buffer
/// already is the row-major `K x (C*R*S)` matrix, so no bytes move.
#[must_use]
pub fn weights_as_mat<'a, T: Copy + Default>(
    weights: &'a Tensor<T>,
    geom: &ConvGeom,
) -> MatRef<'a, T> {
    let ws = weights.shape();
    assert_eq!(
        (ws.n, ws.c, ws.h, ws.w),
        (geom.k, geom.input.c, geom.r, geom.s),
        "weight shape {ws} does not match {geom}"
    );
    MatRef::from_slice(geom.k, geom.input.c * geom.r * geom.s, weights.as_slice())
}

/// Naive direct f32 convolution (reference).
///
/// # Panics
///
/// Panics if `input` or `weights` disagree with `geom`.
#[must_use]
pub fn conv2d_f32_naive(
    input: &Tensor<f32>,
    weights: &Tensor<f32>,
    geom: &ConvGeom,
) -> Tensor<f32> {
    assert_eq!(
        input.shape().with_n(geom.input.n),
        geom.input,
        "input mismatch"
    );
    let ws = weights.shape();
    assert_eq!(
        (ws.n, ws.c, ws.h, ws.w),
        (geom.k, geom.input.c, geom.r, geom.s)
    );
    let out_shape = geom.out_shape().with_n(input.shape().n);
    let mut out = Tensor::zeros(out_shape);
    for n in 0..input.shape().n {
        for k in 0..geom.k {
            for oy in 0..geom.oh {
                for ox in 0..geom.ow {
                    let mut acc = 0f32;
                    for c in 0..geom.input.c {
                        for r in 0..geom.r {
                            for s in 0..geom.s {
                                let iy = (oy * geom.stride + r) as isize - geom.pad as isize;
                                let ix = (ox * geom.stride + s) as isize - geom.pad as isize;
                                if iy < 0
                                    || ix < 0
                                    || iy >= geom.input.h as isize
                                    || ix >= geom.input.w as isize
                                {
                                    continue;
                                }
                                acc += input.at(n, c, iy as usize, ix as usize)
                                    * weights.at(k, c, r, s);
                            }
                        }
                    }
                    out.set(n, k, oy, ox, acc);
                }
            }
        }
    }
    out
}

/// Naive direct int8 convolution with wrapping i32 accumulation (reference).
///
/// # Panics
///
/// Panics if `input` or `weights` disagree with `geom`.
#[must_use]
pub fn conv2d_i8_naive(input: &Tensor<i8>, weights: &Tensor<i8>, geom: &ConvGeom) -> Tensor<i32> {
    assert_eq!(
        input.shape().with_n(geom.input.n),
        geom.input,
        "input mismatch"
    );
    let ws = weights.shape();
    assert_eq!(
        (ws.n, ws.c, ws.h, ws.w),
        (geom.k, geom.input.c, geom.r, geom.s)
    );
    let out_shape = geom.out_shape().with_n(input.shape().n);
    let mut out = Tensor::zeros(out_shape);
    for n in 0..input.shape().n {
        for k in 0..geom.k {
            for oy in 0..geom.oh {
                for ox in 0..geom.ow {
                    let mut acc = 0i32;
                    for c in 0..geom.input.c {
                        for r in 0..geom.r {
                            for s in 0..geom.s {
                                let iy = (oy * geom.stride + r) as isize - geom.pad as isize;
                                let ix = (ox * geom.stride + s) as isize - geom.pad as isize;
                                if iy < 0
                                    || ix < 0
                                    || iy >= geom.input.h as isize
                                    || ix >= geom.input.w as isize
                                {
                                    continue;
                                }
                                let a = input.at(n, c, iy as usize, ix as usize) as i32;
                                let w = weights.at(k, c, r, s) as i32;
                                acc = acc.wrapping_add(a * w);
                            }
                        }
                    }
                    out.set(n, k, oy, ox, acc);
                }
            }
        }
    }
    out
}

/// f32 convolution via im2col + GEMM.
///
/// # Panics
///
/// Panics if shapes disagree with `geom`.
#[must_use]
pub fn conv2d_f32(input: &Tensor<f32>, weights: &Tensor<f32>, geom: &ConvGeom) -> Tensor<f32> {
    let wmat = weights_as_mat(weights, geom).to_mat();
    let out_shape = geom.out_shape().with_n(input.shape().n);
    let mut out = Tensor::zeros(out_shape);
    for n in 0..input.shape().n {
        let cols = im2col::im2col(input.image(n), geom);
        let res = gemm::gemm_f32(&wmat, &cols);
        out.image_mut(n).copy_from_slice(res.as_slice());
    }
    out
}

/// int8 convolution via im2col + GEMM, optionally sharded over threads.
///
/// # Panics
///
/// Panics if shapes disagree with `geom`.
#[must_use]
pub fn conv2d_i8(
    input: &Tensor<i8>,
    weights: &Tensor<i8>,
    geom: &ConvGeom,
    threads: usize,
) -> Tensor<i32> {
    let wmat = weights_as_mat(weights, geom); // zero-copy view
    let out_shape = geom.out_shape().with_n(input.shape().n);
    let mut out = Tensor::zeros(out_shape);
    let (m, k, n_cols) = (geom.k, geom.input.c * geom.r * geom.s, geom.oh * geom.ow);
    let mut cols = vec![0i8; k * n_cols];
    for n in 0..input.shape().n {
        im2col::im2col_into(input.image(n), geom, &mut cols);
        gemm::gemm_i8_i32_threaded_into(
            wmat.as_slice(),
            &cols,
            out.image_mut(n),
            m,
            k,
            n_cols,
            threads,
        );
    }
    out
}

/// Scratch-buffer int8 convolution for one image: `cols` is the reusable
/// im2col buffer (resized as needed) and the accumulator is written into
/// `acc` (`K * OH * OW`, overwritten). Bit-identical to [`conv2d_i8`].
///
/// # Panics
///
/// Panics if shapes disagree with `geom` or `acc` has the wrong length.
pub fn conv2d_i8_into(
    image: &[i8],
    weights: &[i8],
    geom: &ConvGeom,
    cols: &mut Vec<i8>,
    acc: &mut [i32],
    threads: usize,
) {
    let (m, k, n_cols) = (geom.k, geom.input.c * geom.r * geom.s, geom.oh * geom.ow);
    assert_eq!(weights.len(), m * k, "weights do not match {geom}");
    assert_eq!(acc.len(), m * n_cols, "accumulator does not match {geom}");
    cols.resize(k * n_cols, 0);
    im2col::im2col_into(image, geom, cols);
    acc.fill(0);
    gemm::gemm_i8_i32_threaded_into(weights, cols, acc, m, k, n_cols, threads);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape4;

    #[test]
    fn known_3x3_edge_detector() {
        // Sobel-like kernel on a vertical step image.
        let input = Tensor::from_fn(
            Shape4::new(1, 1, 4, 4),
            |_, _, _, w| {
                if w >= 2 {
                    1.0
                } else {
                    0.0
                }
            },
        );
        let weights = Tensor::from_vec(
            Shape4::new(1, 1, 3, 3),
            vec![-1.0, 0.0, 1.0, -1.0, 0.0, 1.0, -1.0, 0.0, 1.0],
        );
        let geom = ConvGeom::new(input.shape(), 1, 3, 3, 1, 0);
        let out = conv2d_f32_naive(&input, &weights, &geom);
        // Interior columns: step edge gives response 3 at the boundary.
        assert_eq!(out.at(0, 0, 0, 0), 3.0);
        assert_eq!(out.at(0, 0, 1, 1), 3.0);
    }

    #[test]
    fn im2col_path_matches_naive_f32() {
        let input = Tensor::from_fn(Shape4::new(2, 3, 7, 6), |n, c, h, w| {
            ((n * 31 + c * 17 + h * 5 + w * 3) % 13) as f32 - 6.0
        });
        let geom = ConvGeom::new(input.shape().with_n(1), 4, 3, 3, 2, 1);
        let weights = Tensor::from_fn(geom.weight_shape(), |k, c, r, s| {
            ((k * 7 + c * 5 + r * 3 + s) % 9) as f32 - 4.0
        });
        let a = conv2d_f32_naive(&input, &weights, &geom);
        let b = conv2d_f32(&input, &weights, &geom);
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn im2col_path_matches_naive_i8() {
        let input = Tensor::from_fn(Shape4::new(1, 5, 6, 6), |_, c, h, w| {
            ((c * 43 + h * 11 + w * 7) % 255) as i8
        });
        let geom = ConvGeom::new(input.shape(), 7, 3, 3, 1, 1);
        let weights = Tensor::from_fn(geom.weight_shape(), |k, c, r, s| {
            ((k * 91 + c * 37 + r * 13 + s * 3) % 251) as i8
        });
        let a = conv2d_i8_naive(&input, &weights, &geom);
        for threads in [1, 3] {
            let b = conv2d_i8(&input, &weights, &geom, threads);
            assert_eq!(a.as_slice(), b.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn conv_1x1_is_channel_mix() {
        let input = Tensor::from_vec(Shape4::new(1, 2, 1, 2), vec![1i8, 2, 3, 4]);
        let geom = ConvGeom::new(input.shape(), 1, 1, 1, 1, 0);
        let weights = Tensor::from_vec(Shape4::new(1, 2, 1, 1), vec![2i8, 10]);
        let out = conv2d_i8_naive(&input, &weights, &geom);
        assert_eq!(out.as_slice(), &[2 + 30, 4 + 40]);
    }
}
