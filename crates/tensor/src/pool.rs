//! Pooling primitives shared by the float graph, the quantized executor and
//! the accelerator's PDP model.

use crate::{Shape4, Tensor};

/// 2-D max pooling with square window `k` and stride `stride`.
///
/// # Panics
///
/// Panics if the window does not tile the input (`(h - k) % stride != 0`),
/// if `k == 0`, or if `stride == 0`; the networks in this workspace only use
/// exact tilings.
#[must_use]
pub fn maxpool2d<T: Copy + Default + PartialOrd>(
    input: &Tensor<T>,
    k: usize,
    stride: usize,
) -> Tensor<T> {
    let s = input.shape();
    assert!(
        k > 0 && stride > 0,
        "pooling window and stride must be positive"
    );
    assert!(
        s.h >= k
            && s.w >= k
            && (s.h - k).is_multiple_of(stride)
            && (s.w - k).is_multiple_of(stride),
        "pool {k}/{stride} does not tile {s}"
    );
    let oh = (s.h - k) / stride + 1;
    let ow = (s.w - k) / stride + 1;
    let mut out = Tensor::zeros(Shape4::new(s.n, s.c, oh, ow));
    for n in 0..s.n {
        for c in 0..s.c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = input.at(n, c, oy * stride, ox * stride);
                    for r in 0..k {
                        for q in 0..k {
                            let v = input.at(n, c, oy * stride + r, ox * stride + q);
                            if v > best {
                                best = v;
                            }
                        }
                    }
                    out.set(n, c, oy, ox, best);
                }
            }
        }
    }
    out
}

/// Global average pooling over f32 feature maps: `(N, C, H, W) -> (N, C, 1, 1)`.
#[must_use]
pub fn global_avg_f32(input: &Tensor<f32>) -> Tensor<f32> {
    let s = input.shape();
    let area = (s.h * s.w) as f32;
    Tensor::from_fn(Shape4::new(s.n, s.c, 1, 1), |n, c, _, _| {
        let mut acc = 0f32;
        for h in 0..s.h {
            for w in 0..s.w {
                acc += input.at(n, c, h, w);
            }
        }
        acc / area
    })
}

/// Per-channel spatial sums of an int8 tensor, as the PDP computes them
/// before the average divide: `(N, C, H, W) -> (N, C)` of i32 sums.
#[must_use]
pub fn global_sum_i8(input: &Tensor<i8>) -> Vec<i32> {
    let s = input.shape();
    let mut out = Vec::with_capacity(s.n * s.c);
    for n in 0..s.n {
        for c in 0..s.c {
            let mut acc = 0i32;
            for h in 0..s.h {
                for w in 0..s.w {
                    acc = acc.wrapping_add(input.at(n, c, h, w) as i32);
                }
            }
            out.push(acc);
        }
    }
    out
}

/// Integer average with round-half-away-from-zero: `round(sum / count)`.
/// This is the exact divide the PDP average unit performs.
///
/// # Panics
///
/// Panics if `count == 0`.
#[inline]
#[must_use]
pub fn rounded_div(sum: i32, count: u32) -> i32 {
    assert!(count > 0, "average over zero elements");
    let c = count as i64;
    let s = sum as i64;
    let half = c / 2;
    let r = if s >= 0 {
        (s + half) / c
    } else {
        (s - half) / c
    };
    r as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_2x2() {
        let input = Tensor::from_vec(
            Shape4::new(1, 1, 4, 4),
            vec![1i8, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16],
        );
        let out = maxpool2d(&input, 2, 2);
        assert_eq!(out.shape(), Shape4::new(1, 1, 2, 2));
        assert_eq!(out.as_slice(), &[6, 8, 14, 16]);
    }

    #[test]
    fn maxpool_3x3_stride1() {
        let input = Tensor::from_fn(Shape4::new(1, 1, 3, 3), |_, _, h, w| (h * 3 + w) as i8);
        let out = maxpool2d(&input, 3, 1);
        assert_eq!(out.as_slice(), &[8]);
    }

    #[test]
    fn maxpool_handles_negative_values() {
        let input = Tensor::from_vec(Shape4::new(1, 1, 2, 2), vec![-9i8, -3, -127, -50]);
        assert_eq!(maxpool2d(&input, 2, 2).as_slice(), &[-3]);
    }

    #[test]
    fn global_avg() {
        let input = Tensor::from_vec(Shape4::new(1, 2, 1, 2), vec![1.0f32, 3.0, -2.0, -2.0]);
        let out = global_avg_f32(&input);
        assert_eq!(out.as_slice(), &[2.0, -2.0]);
    }

    #[test]
    fn global_sums() {
        let input = Tensor::from_vec(Shape4::new(2, 1, 1, 2), vec![1i8, 2, -3, -4]);
        assert_eq!(global_sum_i8(&input), vec![3, -7]);
    }

    #[test]
    fn rounded_div_half_away() {
        assert_eq!(rounded_div(5, 2), 3);
        assert_eq!(rounded_div(-5, 2), -3);
        assert_eq!(rounded_div(4, 2), 2);
        assert_eq!(rounded_div(7, 16), 0);
        assert_eq!(rounded_div(8, 16), 1);
        assert_eq!(rounded_div(-8, 16), -1);
    }

    #[test]
    #[should_panic(expected = "does not tile")]
    fn ragged_pool_rejected() {
        let input = Tensor::<i8>::zeros(Shape4::new(1, 1, 5, 5));
        let _ = maxpool2d(&input, 2, 2);
    }
}
