//! im2col / col2im lowering of convolution to matrix multiplication.
//!
//! The column matrix has one row per `(c, r, s)` weight tap and one column
//! per output pixel `(oy, ox)`; padded taps read as zero. Multiplying the
//! `K x (C*R*S)` weight matrix by the column matrix yields the `K x (OH*OW)`
//! output feature map — the same schedule the accelerator's MAC array walks,
//! which is what makes the fast fault-correction path algebraically exact.

use crate::{ConvGeom, Mat, Shape4};

/// Builds the column matrix for one batch item of `input`.
///
/// `image` must be the CHW slice of a single batch item whose shape matches
/// `geom.input` (with any `n`).
///
/// # Panics
///
/// Panics if `image.len() != geom.input.image_len()`.
///
/// # Examples
///
/// ```
/// use nvfi_tensor::{im2col, ConvGeom, Shape4, Tensor};
/// let geom = ConvGeom::new(Shape4::new(1, 1, 2, 2), 1, 2, 2, 1, 0);
/// let img = Tensor::from_vec(Shape4::new(1, 1, 2, 2), vec![1i8, 2, 3, 4]);
/// let cols = im2col::im2col(img.image(0), &geom);
/// assert_eq!((cols.rows(), cols.cols()), (4, 1));
/// assert_eq!(cols.as_slice(), &[1, 2, 3, 4]);
/// ```
#[must_use]
pub fn im2col<T: Copy + Default>(image: &[T], geom: &ConvGeom) -> Mat<T> {
    let mut out = Mat::zeros(geom.input.c * geom.r * geom.s, geom.oh * geom.ow);
    im2col_into(image, geom, out.as_mut_slice());
    out
}

/// Buffer-reusing [`im2col`]: fills `out` (length
/// `C*R*S * OH*OW`, row-major) with the column matrix, zeroing it first so
/// padded taps read as zero. This is what lets the steady-state inference
/// path run without per-op allocation — callers keep one scratch buffer
/// sized to the largest convolution of the plan.
///
/// # Panics
///
/// Panics if `image` or `out` have the wrong length for `geom`.
pub fn im2col_into<T: Copy + Default>(image: &[T], geom: &ConvGeom, out: &mut [T]) {
    let cols = geom.oh * geom.ow;
    im2col_into_offset(image, geom, out, cols, 0);
}

/// Strided [`im2col_into`]: writes one image's column block into a wider
/// matrix whose rows are `row_stride` long, starting at column `col_off` —
/// how a mini-batch's columns are laid side by side for one batched GEMM.
/// Only this image's `OH*OW`-wide column block is zeroed and written.
///
/// # Panics
///
/// Panics if `image` does not match `geom` or the block exceeds `out`.
pub fn im2col_into_offset<T: Copy + Default>(
    image: &[T],
    geom: &ConvGeom,
    out: &mut [T],
    row_stride: usize,
    col_off: usize,
) {
    let Shape4 { c: ci, h, w, .. } = geom.input;
    assert_eq!(
        image.len(),
        geom.input.image_len(),
        "image does not match {}",
        geom.input
    );
    let cols = geom.oh * geom.ow;
    let rows = ci * geom.r * geom.s;
    assert!(
        col_off + cols <= row_stride,
        "column block exceeds row stride"
    );
    assert_eq!(
        out.len(),
        rows * row_stride,
        "column buffer mismatch for {geom}"
    );
    for row_idx in 0..rows {
        out[row_idx * row_stride + col_off..row_idx * row_stride + col_off + cols]
            .fill(T::default());
    }
    for c in 0..ci {
        for r in 0..geom.r {
            for s in 0..geom.s {
                let row_idx = (c * geom.r + r) * geom.s + s;
                let row =
                    &mut out[row_idx * row_stride + col_off..row_idx * row_stride + col_off + cols];
                for oy in 0..geom.oh {
                    let iy = (oy * geom.stride + r) as isize - geom.pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue; // whole row of taps falls in padding
                    }
                    let iy = iy as usize;
                    let src_row = &image[(c * h + iy) * w..(c * h + iy + 1) * w];
                    let dst_row = &mut row[oy * geom.ow..(oy + 1) * geom.ow];
                    if geom.stride == 1 {
                        // Contiguous run: the in-bounds ox span maps to a
                        // contiguous input span shifted by (s - pad).
                        let shift = s as isize - geom.pad as isize;
                        let ox_lo = (-shift).max(0) as usize;
                        let ox_hi = ((w as isize - shift).min(geom.ow as isize)).max(0) as usize;
                        if ox_lo < ox_hi {
                            let src_lo = (ox_lo as isize + shift) as usize;
                            dst_row[ox_lo..ox_hi]
                                .copy_from_slice(&src_row[src_lo..src_lo + (ox_hi - ox_lo)]);
                        }
                    } else {
                        for (ox, dst) in dst_row.iter_mut().enumerate() {
                            let ix = (ox * geom.stride + s) as isize - geom.pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            *dst = src_row[ix as usize];
                        }
                    }
                }
            }
        }
    }
}

/// Adjoint of [`im2col`]: scatter-adds a column-matrix gradient back onto an
/// image gradient buffer. Used by the convolution backward pass.
///
/// # Panics
///
/// Panics if the matrix or buffer dimensions do not match `geom`.
pub fn col2im_acc_f32(cols_grad: &Mat<f32>, geom: &ConvGeom, image_grad: &mut [f32]) {
    let Shape4 { c: ci, h, w, .. } = geom.input;
    assert_eq!(image_grad.len(), geom.input.image_len());
    assert_eq!(cols_grad.rows(), ci * geom.r * geom.s);
    assert_eq!(cols_grad.cols(), geom.oh * geom.ow);
    for c in 0..ci {
        for r in 0..geom.r {
            for s in 0..geom.s {
                let row_idx = (c * geom.r + r) * geom.s + s;
                let row = cols_grad.row(row_idx);
                for oy in 0..geom.oh {
                    let iy = (oy * geom.stride + r) as isize - geom.pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..geom.ow {
                        let ix = (ox * geom.stride + s) as isize - geom.pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        image_grad[(c * h + iy) * w + ix as usize] += row[oy * geom.ow + ox];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn identity_1x1_kernel() {
        let geom = ConvGeom::new(Shape4::new(1, 2, 2, 2), 1, 1, 1, 1, 0);
        let img = Tensor::from_vec(Shape4::new(1, 2, 2, 2), (0..8i8).collect());
        let cols = im2col(img.image(0), &geom);
        assert_eq!((cols.rows(), cols.cols()), (2, 4));
        assert_eq!(cols.as_slice(), img.as_slice());
    }

    #[test]
    fn padding_reads_zero() {
        let geom = ConvGeom::new(Shape4::new(1, 1, 1, 1), 1, 3, 3, 1, 1);
        let img = Tensor::from_vec(Shape4::new(1, 1, 1, 1), vec![5i8]);
        let cols = im2col(img.image(0), &geom);
        assert_eq!((cols.rows(), cols.cols()), (9, 1));
        // Only the center tap reads the pixel; all others are padding.
        let expected: Vec<i8> = (0..9).map(|i| if i == 4 { 5 } else { 0 }).collect();
        assert_eq!(cols.as_slice(), expected.as_slice());
    }

    #[test]
    fn stride_two_samples_every_other_pixel() {
        let geom = ConvGeom::new(Shape4::new(1, 1, 4, 4), 1, 1, 1, 2, 0);
        let img = Tensor::from_fn(Shape4::new(1, 1, 4, 4), |_, _, h, w| (h * 4 + w) as i8);
        let cols = im2col(img.image(0), &geom);
        assert_eq!(cols.as_slice(), &[0, 2, 8, 10]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for all x, y — checked on a dense
        // basis by transposing the implied linear operator.
        let geom = ConvGeom::new(Shape4::new(1, 2, 3, 3), 1, 2, 2, 1, 1);
        let in_len = geom.input.image_len();
        let cols_len = geom.input.c * geom.r * geom.s * geom.oh * geom.ow;
        // Operator matrix from im2col applied to basis vectors.
        let mut op = vec![vec![0f32; in_len]; cols_len];
        for i in 0..in_len {
            let mut x = vec![0f32; in_len];
            x[i] = 1.0;
            let cols = im2col(&x, &geom);
            for (j, &v) in cols.as_slice().iter().enumerate() {
                op[j][i] = v;
            }
        }
        // col2im applied to basis vectors must give the transpose.
        #[allow(clippy::needless_range_loop)]
        for j in 0..cols_len {
            let mut g = Mat::zeros(geom.input.c * geom.r * geom.s, geom.oh * geom.ow);
            g.as_mut_slice()[j] = 1.0;
            let mut back = vec![0f32; in_len];
            col2im_acc_f32(&g, &geom, &mut back);
            for i in 0..in_len {
                assert_eq!(back[i], op[j][i], "adjoint mismatch at ({j},{i})");
            }
        }
    }
}
