//! Convolution on the systolic array: im2col + weight-tile streaming.

use nvfi_quant::{QOpKind, QuantModel};
use nvfi_tensor::{im2col, ConvGeom, Tensor};

use crate::array::{PeFault, SystolicArray};

/// Statistics of one simulated layer (or layer sequence).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimStats {
    /// Simulated array cycles (load + stream + drain).
    pub cycles: u64,
    /// PE evaluations performed by the simulator.
    pub pe_ops: u64,
}

/// Runs one convolution on an `n x n` array, returning the i32 accumulator
/// tensor and simulation statistics. Functionally equivalent to
/// [`nvfi_tensor::conv::conv2d_i8_naive`] when no faults are set.
///
/// The reduction axis (`C*R*S`) is tiled over array rows; output channels
/// are tiled over array columns.
///
/// # Panics
///
/// Panics if shapes disagree with `geom`.
#[must_use]
pub fn run_conv(
    input: &Tensor<i8>,
    weights: &Tensor<i8>,
    geom: &ConvGeom,
    array_size: usize,
    faults: &[(usize, usize, PeFault)],
) -> (Tensor<i32>, SimStats) {
    let n = array_size;
    let crs = geom.input.c * geom.r * geom.s;
    let wmat = nvfi_tensor::conv::weights_as_mat(weights, geom); // K x CRS
    let out_shape = geom.out_shape().with_n(input.shape().n);
    let mut out = Tensor::<i32>::zeros(out_shape);
    let mut stats = SimStats::default();

    for img in 0..input.shape().n {
        let cols = im2col::im2col(input.image(img), geom); // CRS x (OH*OW)
        let t = cols.cols();
        // Tile over output channels (array columns) and reduction (rows).
        let mut k0 = 0;
        while k0 < geom.k {
            let ktile = n.min(geom.k - k0);
            let mut acc = vec![vec![0i32; t]; ktile];
            let mut r0 = 0;
            while r0 < crs {
                let rtile = n.min(crs - r0);
                let mut array = SystolicArray::new(n);
                for &(fr, fc, f) in faults {
                    array.set_fault(fr, fc, f);
                }
                // Stationary tile: row = reduction index, col = output chan.
                let tile: Vec<Vec<i8>> = (0..rtile)
                    .map(|r| (0..ktile).map(|c| wmat.at(k0 + c, r0 + r)).collect())
                    .collect();
                array.load_weights(&tile);
                let columns: Vec<Vec<i8>> = (0..t)
                    .map(|j| (0..rtile).map(|r| cols.at(r0 + r, j)).collect())
                    .collect();
                let results = array.stream(&columns);
                for (j, res) in results.iter().enumerate() {
                    for c in 0..ktile {
                        acc[c][j] = acc[c][j].wrapping_add(res[c]);
                    }
                }
                stats.cycles += array.cycles();
                stats.pe_ops += array.pe_ops();
                r0 += rtile;
            }
            for c in 0..ktile {
                for j in 0..t {
                    let (oy, ox) = (j / geom.ow, j % geom.ow);
                    out.set(img, k0 + c, oy, ox, acc[c][j]);
                }
            }
            k0 += ktile;
        }
    }
    (out, stats)
}

/// Simulates the first `layers` convolutions of a quantized model on one
/// image — the workload SAFFIRA's 5.8 sim/s figure refers to (two layers).
/// Returns the per-layer statistics.
///
/// # Panics
///
/// Panics if the model has fewer than `layers` convolution ops.
#[must_use]
pub fn simulate_first_convs(
    model: &QuantModel,
    image: &Tensor<i8>,
    layers: usize,
    array_size: usize,
    faults: &[(usize, usize, PeFault)],
) -> Vec<SimStats> {
    let mut stats = Vec::new();
    let mut x = image.clone();
    for op in &model.ops {
        if stats.len() == layers {
            break;
        }
        if let QOpKind::Conv(c) = &op.kind {
            let ws = c.weight.shape();
            let geom = ConvGeom::new(x.shape().with_n(1), ws.n, ws.h, ws.w, c.stride, c.pad);
            let (acc, s) = run_conv(&x, &c.weight, &geom, array_size, faults);
            stats.push(s);
            // Requantize to feed the next layer (per-channel aware).
            let os = acc.shape();
            let mut y = Tensor::<i8>::zeros(os);
            for n in 0..os.n {
                for k in 0..os.c {
                    let rq = c.requant_for(k);
                    for h in 0..os.h {
                        for w in 0..os.w {
                            let a = acc.at(n, k, h, w).wrapping_add(c.bias[k]);
                            y.set(
                                n,
                                k,
                                h,
                                w,
                                nvfi_quant::exec::sdp_postprocess(a, rq, None, c.relu),
                            );
                        }
                    }
                }
            }
            x = y;
        }
    }
    assert_eq!(
        stats.len(),
        layers,
        "model has fewer than {layers} conv layers"
    );
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvfi_tensor::Shape4;

    #[test]
    fn conv_matches_reference_across_tilings() {
        let input = Tensor::from_fn(Shape4::new(1, 5, 6, 6), |_, c, h, w| {
            ((c * 43 + h * 11 + w * 7) % 255) as i8
        });
        let geom = ConvGeom::new(input.shape(), 7, 3, 3, 1, 1);
        let weights = Tensor::from_fn(geom.weight_shape(), |k, c, r, s| {
            ((k * 91 + c * 37 + r * 13 + s * 3) % 251) as i8
        });
        let want = nvfi_tensor::conv::conv2d_i8_naive(&input, &weights, &geom);
        for n in [4, 8, 16] {
            let (got, stats) = run_conv(&input, &weights, &geom, n, &[]);
            assert_eq!(got.as_slice(), want.as_slice(), "array size {n}");
            assert!(stats.cycles > 0 && stats.pe_ops > 0);
        }
    }

    #[test]
    fn strided_conv_matches_reference() {
        let input = Tensor::from_fn(Shape4::new(1, 4, 8, 8), |_, c, h, w| {
            ((c + 3 * h + 5 * w) % 19) as i8
        });
        let geom = ConvGeom::new(input.shape(), 6, 3, 3, 2, 1);
        let weights = Tensor::from_fn(geom.weight_shape(), |k, c, r, s| {
            ((k + c + r + s) % 7) as i8 - 3
        });
        let want = nvfi_tensor::conv::conv2d_i8_naive(&input, &weights, &geom);
        let (got, _) = run_conv(&input, &weights, &geom, 8, &[]);
        assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    fn pe_fault_perturbs_output() {
        let input = Tensor::from_fn(Shape4::new(1, 8, 4, 4), |_, c, h, w| {
            ((c * 5 + h + w) % 23) as i8
        });
        let geom = ConvGeom::new(input.shape(), 8, 1, 1, 1, 0);
        let weights = Tensor::from_fn(geom.weight_shape(), |k, c, _, _| ((k * 3 + c) % 11) as i8);
        let (clean, _) = run_conv(&input, &weights, &geom, 8, &[]);
        let (bad, _) = run_conv(
            &input,
            &weights,
            &geom,
            8,
            &[(0, 0, PeFault::StuckProduct(999))],
        );
        assert_ne!(clean.as_slice(), bad.as_slice());
        // Only output channel 0 (array column 0) is affected by PE (0,0).
        for k in 1..8 {
            for h in 0..4 {
                for w in 0..4 {
                    assert_eq!(clean.at(0, k, h, w), bad.at(0, k, h, w));
                }
            }
        }
    }

    #[test]
    fn cycle_count_grows_with_reduction_tiles() {
        let input = Tensor::<i8>::zeros(Shape4::new(1, 32, 4, 4));
        let geom = ConvGeom::new(input.shape(), 8, 1, 1, 1, 0);
        let weights = Tensor::<i8>::zeros(geom.weight_shape());
        let (_, small) = run_conv(&input, &weights, &geom, 32, &[]);
        let (_, big) = run_conv(&input, &weights, &geom, 8, &[]);
        assert!(big.cycles > small.cycles, "more tiles => more cycles");
    }
}
