//! A SAFFIRA-style cycle-driven systolic-array simulator — the "software
//! simulation" baseline the paper's speedup claim is measured against.
//!
//! SAFFIRA (DDECS'24) assesses DNN accelerator reliability by simulating a
//! homogeneous systolic PE array; because the simulation is cycle-driven it
//! is slow, and the paper reports it completing **5.8 simulations/second on
//! just two convolutional layers** while the FPGA emulator reaches 217 full
//! ResNet-18 inferences/second. This crate reproduces that *kind* of tool:
//!
//! * an `N x N` weight-stationary PE grid ([`SystolicArray`]): activations
//!   flow west-to-east, partial sums north-to-south, with proper input
//!   skewing — every PE register is updated every simulated cycle;
//! * convolution is lowered with im2col and tiled over the grid
//!   ([`sim::run_conv`]);
//! * PE-level fault injection ([`PeFault`]) forcing a PE's product, the
//!   systolic analogue of the platform's multiplier faults.
//!
//! The functional results are property-tested against the reference
//! convolution; the *throughput* of this simulator is what the speedup
//! experiment measures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Index loops here mirror the tensor math they implement; iterator
// rewrites would obscure the (n, c, h, w) structure.
#![allow(clippy::needless_range_loop)]

mod array;
pub mod sim;

pub use array::{PeFault, SystolicArray};
