//! The weight-stationary PE grid, simulated register-by-register.

/// A fault forced on one PE's multiplier output.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum PeFault {
    /// Healthy PE.
    #[default]
    None,
    /// The PE's product is replaced by a constant before accumulation.
    StuckProduct(i32),
}

/// An `N x N` weight-stationary systolic array.
///
/// Dataflow per cycle (TPU-style):
///
/// * each PE computes `psum_out = psum_in + weight * a_in` (with `a_in`
///   from the west and `psum_in` from the north),
/// * activations shift one PE east,
/// * partial sums shift one PE south.
///
/// Column `c` of the weight tile serves matrix row `c` of the stationary
/// operand; results for output row `r` leave the bottom of column... — in
/// this orientation: weights `W[r][c]` sit at grid position `(r, c)` with
/// `r` indexing the reduction dimension and `c` indexing output columns?
/// No: here rows hold the **reduction** axis and columns hold **outputs**:
/// `psum` accumulates down a column, so column `j` produces output `j`.
#[derive(Clone, Debug)]
pub struct SystolicArray {
    n: usize,
    weights: Vec<i32>,
    faults: Vec<PeFault>,
    /// Activation registers (west-to-east pipeline), row-major.
    a_regs: Vec<i32>,
    /// Partial-sum registers (north-to-south pipeline), row-major.
    p_regs: Vec<i32>,
    cycles: u64,
    pe_ops: u64,
}

impl SystolicArray {
    /// Creates an `n x n` array with zero weights and no faults.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "array size must be positive");
        SystolicArray {
            n,
            weights: vec![0; n * n],
            faults: vec![PeFault::None; n * n],
            a_regs: vec![0; n * n],
            p_regs: vec![0; n * n],
            cycles: 0,
            pe_ops: 0,
        }
    }

    /// Grid size.
    #[must_use]
    pub fn size(&self) -> usize {
        self.n
    }

    /// Total simulated cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total PE multiply-accumulate evaluations simulated.
    #[must_use]
    pub fn pe_ops(&self) -> u64 {
        self.pe_ops
    }

    /// Sets the fault state of PE `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set_fault(&mut self, row: usize, col: usize, fault: PeFault) {
        assert!(
            row < self.n && col < self.n,
            "PE ({row},{col}) out of range"
        );
        self.faults[row * self.n + col] = fault;
    }

    /// Loads a stationary weight tile: `tile[r][c]` goes to PE `(r, c)`.
    /// Rows beyond `tile.len()` (or short rows) load zero. Loading costs
    /// `n` cycles (one row per cycle), as in a real array.
    pub fn load_weights(&mut self, tile: &[Vec<i8>]) {
        for r in 0..self.n {
            for c in 0..self.n {
                let v = tile.get(r).and_then(|row| row.get(c)).copied().unwrap_or(0);
                self.weights[r * self.n + c] = i32::from(v);
            }
        }
        self.cycles += self.n as u64;
        // Pipelines are drained between tiles.
        self.a_regs.fill(0);
        self.p_regs.fill(0);
    }

    /// Streams `columns` of activations (each of length <= n, reduction
    /// axis) through the array with proper skewing and returns one output
    /// vector (length n) per input column, after the pipeline drains.
    ///
    /// Column `t` of the input reaches the top of the array skewed by row;
    /// its results appear `2n - 1 + t` cycles later at the bottom.
    pub fn stream(&mut self, columns: &[Vec<i8>]) -> Vec<Vec<i32>> {
        let n = self.n;
        let t_total = columns.len() + 2 * n - 1;
        let mut outputs: Vec<Vec<i32>> = vec![vec![0; n]; columns.len()];
        for t in 0..t_total {
            // One simulated cycle, updating the whole grid in dataflow
            // order (east-most / south-most first so registers shift
            // correctly without double-moving values).
            self.cycles += 1;
            // 1. Outputs leave the bottom row's psum registers.
            for col in 0..n {
                // Column col's result for input column `t - (2n - 1 - ... )`:
                // a value injected at the top at cycle T exits at T + n.
                // We collect after the update below instead; see step 4.
                let _ = col;
            }
            // 2. Shift partial sums south and activations east, computing
            //    into the *new* registers (process rows bottom-up, cols
            //    east-first).
            let mut new_a = vec![0i32; n * n];
            let mut new_p = vec![0i32; n * n];
            for r in 0..n {
                for c in 0..n {
                    let a_in = if c == 0 {
                        self.feed_a(columns, t, r)
                    } else {
                        self.a_regs[r * n + c - 1]
                    };
                    let p_in = if r == 0 {
                        0
                    } else {
                        self.p_regs[(r - 1) * n + c]
                    };
                    let w = self.weights[r * n + c];
                    let product = match self.faults[r * n + c] {
                        PeFault::None => w.wrapping_mul(a_in),
                        PeFault::StuckProduct(v) => v,
                    };
                    self.pe_ops += 1;
                    new_p[r * n + c] = p_in.wrapping_add(product);
                    new_a[r * n + c] = a_in;
                }
            }
            self.a_regs = new_a;
            self.p_regs = new_p;
            // 3. Collect finished columns: the value that entered row 0 at
            //    cycle `t0` has accumulated all n rows after n cycles and
            //    sits in the bottom psum register at cycle t0 + n - 1...
            //    with skewing, input column `k` (0-based) enters row r at
            //    cycle k + r; its column-c result is complete in
            //    p_regs[(n-1)*n + c] at cycle k + (n - 1) + c? No — the
            //    activation reaches column c after c extra hops, so the
            //    contribution of row r to column c happens at cycle
            //    k + r + c; the psum then travels the remaining rows.
            //    Total: result for input k, output c is in the bottom
            //    register at cycle k + c + n - 1 (0-based), i.e. we can
            //    read it now if t == k + c + n - 1.
            for c in 0..n {
                if t + 1 >= n + c {
                    let k = t + 1 - (c + n);
                    if k < columns.len() {
                        outputs[k][c] = self.p_regs[(n - 1) * n + c];
                    }
                }
            }
        }
        outputs
    }

    /// The skewed activation feed: input column `k`'s element `r` enters
    /// row `r` at cycle `k + r`.
    fn feed_a(&self, columns: &[Vec<i8>], t: usize, row: usize) -> i32 {
        if t < row {
            return 0;
        }
        let k = t - row;
        if k >= columns.len() {
            return 0;
        }
        i32::from(columns[k].get(row).copied().unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: out[k][c] = sum_r tile[r][c] * col_k[r].
    fn reference(tile: &[Vec<i8>], columns: &[Vec<i8>], n: usize) -> Vec<Vec<i32>> {
        columns
            .iter()
            .map(|col| {
                (0..n)
                    .map(|c| {
                        (0..n)
                            .map(|r| {
                                i32::from(tile.get(r).and_then(|x| x.get(c)).copied().unwrap_or(0))
                                    * i32::from(col.get(r).copied().unwrap_or(0))
                            })
                            .sum()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn matvec_matches_reference() {
        let mut arr = SystolicArray::new(4);
        let tile: Vec<Vec<i8>> = vec![
            vec![1, 2, 3, 4],
            vec![5, 6, 7, 8],
            vec![-1, -2, -3, -4],
            vec![0, 1, 0, -1],
        ];
        arr.load_weights(&tile);
        let columns: Vec<Vec<i8>> = vec![vec![1, 1, 1, 1], vec![2, 0, -2, 0], vec![-3, 5, 7, -9]];
        let out = arr.stream(&columns);
        assert_eq!(out, reference(&tile, &columns, 4));
    }

    #[test]
    fn ragged_inputs_are_zero_padded() {
        let mut arr = SystolicArray::new(3);
        arr.load_weights(&[vec![1, 1, 1]]); // only row 0 loaded
        let out = arr.stream(&[vec![5]]); // only element 0 present
        assert_eq!(out, vec![vec![5, 5, 5]]);
    }

    #[test]
    fn stuck_product_changes_one_output_column_only() {
        let mut arr = SystolicArray::new(3);
        let tile: Vec<Vec<i8>> = vec![vec![1, 2, 3], vec![4, 5, 6], vec![7, 8, 9]];
        arr.load_weights(&tile);
        let cols: Vec<Vec<i8>> = vec![vec![1, 2, 3], vec![-1, 0, 2]];
        let clean = arr.stream(&cols);

        let mut faulty = SystolicArray::new(3);
        faulty.load_weights(&tile);
        faulty.set_fault(1, 2, PeFault::StuckProduct(100));
        let bad = faulty.stream(&cols);
        for k in 0..cols.len() {
            assert_eq!(clean[k][0], bad[k][0]);
            assert_eq!(clean[k][1], bad[k][1]);
            assert_ne!(
                clean[k][2], bad[k][2],
                "column 2 must see the fault (k={k})"
            );
            // The faulted PE replaces w*a with 100 for every streamed value.
            let expected = clean[k][2] - 6 * i32::from(cols[k][1]) + 100;
            assert_eq!(bad[k][2], expected);
        }
    }

    #[test]
    fn cycles_account_load_and_drain() {
        let mut arr = SystolicArray::new(8);
        arr.load_weights(&[]);
        assert_eq!(arr.cycles(), 8);
        let _ = arr.stream(&vec![vec![0i8; 8]; 10]);
        // 10 columns + 2*8 - 1 drain cycles.
        assert_eq!(arr.cycles(), 8 + 10 + 15);
        assert_eq!(arr.pe_ops(), (10 + 15) * 64);
    }
}
