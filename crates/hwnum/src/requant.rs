//! Fixed-point re-quantization as performed by the SDP post-processing unit.

use core::fmt;

use crate::sat;

/// A fixed-point scale factor `multiplier / 2^shift` applied to i32/i64
/// accumulator values, mirroring NVDLA's SDP scaling stage (and TFLite-style
/// integer-only inference).
///
/// The quantizer converts a real-valued scale `s = s_in * s_w / s_out` into a
/// normalized 31-bit multiplier and a right shift; [`Requant::apply`] then
/// computes `round(x * multiplier / 2^shift)` with round-half-away-from-zero,
/// entirely in integer arithmetic — identical on the CPU reference executor
/// and the accelerator model, so outputs are bit-exact across both.
///
/// # Examples
///
/// ```
/// use nvfi_hwnum::Requant;
///
/// let r = Requant::from_scale(0.25).unwrap();
/// assert_eq!(r.apply(100), 25);
/// assert_eq!(r.apply(-100), -25);
/// let identity = Requant::from_scale(1.0).unwrap();
/// assert_eq!(identity.apply(123456), 123456);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Requant {
    multiplier: i32,
    shift: u8,
}

/// Error returned when a real-valued scale cannot be encoded as a fixed-point
/// multiplier (non-finite, zero, negative, or out of dynamic range).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct EncodeScaleError {
    scale_bits: u64,
}

impl fmt::Display for EncodeScaleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scale {} cannot be encoded as a fixed-point requantizer",
            f64::from_bits(self.scale_bits)
        )
    }
}

impl std::error::Error for EncodeScaleError {}

impl Requant {
    /// Maximum supported right shift.
    pub const MAX_SHIFT: u8 = 62;

    /// The identity requantizer (`x -> x`).
    pub const IDENTITY: Requant = Requant {
        multiplier: 1,
        shift: 0,
    };

    /// Creates a requantizer from raw fixed-point parts.
    ///
    /// # Panics
    ///
    /// Panics if `multiplier < 0` or `shift > Self::MAX_SHIFT`; both are
    /// programming errors (register fields in the real device are unsigned
    /// and bounded).
    #[must_use]
    pub fn from_parts(multiplier: i32, shift: u8) -> Self {
        assert!(multiplier >= 0, "requant multiplier must be non-negative");
        assert!(shift <= Self::MAX_SHIFT, "requant shift out of range");
        Requant { multiplier, shift }
    }

    /// Encodes a positive real scale as `multiplier / 2^shift` with the
    /// multiplier normalized into `[2^30, 2^31)` whenever possible, matching
    /// the precision the SDP scaling registers provide.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeScaleError`] if `scale` is not finite, not strictly
    /// positive, or so large/small that it falls outside the representable
    /// fixed-point range.
    pub fn from_scale(scale: f64) -> Result<Self, EncodeScaleError> {
        let err = EncodeScaleError {
            scale_bits: scale.to_bits(),
        };
        if !scale.is_finite() || scale <= 0.0 {
            return Err(err);
        }
        // Normalize scale = m * 2^e with m in [0.5, 1).
        let mut shift = 0i32;
        let mut s = scale;
        while s >= 1.0 {
            s /= 2.0;
            shift -= 1;
        }
        while s < 0.5 {
            s *= 2.0;
            shift += 1;
        }
        // multiplier = round(s * 2^31) in [2^30, 2^31].
        let mut m = (s * f64::from(1u32 << 31)).round() as i64;
        let mut total_shift = shift + 31;
        if m == (1i64 << 31) {
            m >>= 1;
            total_shift -= 1;
        }
        if total_shift < 0 {
            // Scale too large to renormalize; fold the excess into the
            // multiplier if it still fits in i32.
            m <<= -total_shift;
            total_shift = 0;
            if m > i32::MAX as i64 {
                return Err(err);
            }
        }
        if total_shift > Self::MAX_SHIFT as i32 {
            // Scale is so small that even the largest shift underflows;
            // saturate to "always zero" representation.
            return Ok(Requant {
                multiplier: 0,
                shift: 0,
            });
        }
        Ok(Requant {
            multiplier: m as i32,
            shift: total_shift as u8,
        })
    }

    /// The fixed-point multiplier.
    #[must_use]
    pub const fn multiplier(self) -> i32 {
        self.multiplier
    }

    /// The right shift (power-of-two divisor).
    #[must_use]
    pub const fn shift(self) -> u8 {
        self.shift
    }

    /// The effective real-valued scale this requantizer applies.
    #[must_use]
    pub fn effective_scale(self) -> f64 {
        self.multiplier as f64 / (1u64 << self.shift) as f64
    }

    /// Applies the requantizer: `round(x * multiplier / 2^shift)` with
    /// round-half-away-from-zero, computed in 128-bit intermediate precision
    /// so it never overflows for any `i64` input.
    #[inline]
    #[must_use]
    pub fn apply(self, x: i64) -> i64 {
        let prod = x as i128 * self.multiplier as i128;
        if self.shift == 0 {
            return sat::clamp_i128_to_i64(prod);
        }
        let half = 1i128 << (self.shift - 1);
        // Round half away from zero on the magnitude so that exact multiples
        // are unchanged for either sign (arithmetic shift floors, which would
        // bias negative results downward).
        let mag = (prod.abs() + half) >> self.shift;
        let rounded = if prod < 0 { -mag } else { mag };
        sat::clamp_i128_to_i64(rounded)
    }

    /// Applies the requantizer and saturates the result to `i8`, the output
    /// activation format of the SDP.
    #[inline]
    #[must_use]
    pub fn apply_i8(self, x: i64) -> i8 {
        sat::to_i8(self.apply(x))
    }

    /// Applies the requantizer and saturates the result to `i32`.
    #[inline]
    #[must_use]
    pub fn apply_i32(self, x: i64) -> i32 {
        sat::to_i32(self.apply(x))
    }
}

impl Default for Requant {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl fmt::Display for Requant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/2^{}", self.multiplier, self.shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity() {
        let r = Requant::from_scale(1.0).unwrap();
        for x in [-1000i64, -1, 0, 1, 7, 123456789] {
            assert_eq!(r.apply(x), x);
        }
    }

    #[test]
    fn power_of_two_scales() {
        let r = Requant::from_scale(0.5).unwrap();
        assert_eq!(r.apply(10), 5);
        assert_eq!(r.apply(5), 3); // 2.5 rounds away from zero
        assert_eq!(r.apply(-5), -3);
        let r = Requant::from_scale(2.0).unwrap();
        assert_eq!(r.apply(10), 20);
    }

    #[test]
    fn rounding_half_away_from_zero() {
        let r = Requant::from_scale(0.25).unwrap();
        assert_eq!(r.apply(2), 1); // 0.5 -> 1
        assert_eq!(r.apply(-2), -1); // -0.5 -> -1
        assert_eq!(r.apply(1), 0); // 0.25 -> 0
    }

    #[test]
    fn matches_float_reference_within_one_ulp() {
        for &scale in &[0.001953, 0.0173, 0.33, 0.9999, 1.5, 3.25, 117.0] {
            let r = Requant::from_scale(scale).unwrap();
            for &x in &[-100000i64, -777, -1, 0, 1, 999, 54321] {
                let want = (x as f64 * scale).round();
                let got = r.apply(x) as f64;
                assert!(
                    (want - got).abs() <= 1.0,
                    "scale={scale} x={x} want={want} got={got}"
                );
            }
        }
    }

    #[test]
    fn saturating_i8_output() {
        let r = Requant::from_scale(1.0).unwrap();
        assert_eq!(r.apply_i8(1000), 127);
        assert_eq!(r.apply_i8(-1000), -128);
        assert_eq!(r.apply_i8(-12), -12);
    }

    #[test]
    fn rejects_bad_scales() {
        assert!(Requant::from_scale(0.0).is_err());
        assert!(Requant::from_scale(-1.0).is_err());
        assert!(Requant::from_scale(f64::NAN).is_err());
        assert!(Requant::from_scale(f64::INFINITY).is_err());
        let msg = Requant::from_scale(-2.5).unwrap_err().to_string();
        assert!(msg.contains("-2.5"), "{msg}");
    }

    #[test]
    fn tiny_scale_saturates_to_zero() {
        let r = Requant::from_scale(1e-30).unwrap();
        assert_eq!(r.apply(i64::MAX / 2), 0);
    }

    #[test]
    fn no_overflow_at_extremes() {
        let r = Requant::from_scale(1.0).unwrap();
        assert_eq!(r.apply(i64::MAX), i64::MAX);
        assert_eq!(r.apply(i64::MIN), i64::MIN);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_parts_rejects_negative() {
        let _ = Requant::from_parts(-1, 0);
    }
}
