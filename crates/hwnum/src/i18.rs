//! The 18-bit two's-complement multiplier-output lane.

use core::fmt;
use core::ops::{Add, Neg, Sub};

/// A signed value carried on an 18-bit two's-complement hardware lane.
///
/// `I18` is the unit of fault injection in the emulated platform: every
/// multiplier output in the CMAC is an 18-bit lane, and the injector replaces
/// a configurable subset of those 18 wires with constant bits
/// (see [`I18::overridden`]).
///
/// The value is stored sign-extended in an `i32`; the invariant
/// `I18::MIN.value() <= v <= I18::MAX.value()` always holds. All arithmetic
/// wraps modulo 2^18 exactly like the hardware lane would.
///
/// # Examples
///
/// ```
/// use nvfi_hwnum::I18;
///
/// assert_eq!(I18::new(131071), I18::MAX);
/// assert_eq!(I18::new(131072), I18::MIN);          // wraps
/// assert_eq!(I18::MAX + I18::new(1), I18::MIN);    // wraps
/// assert_eq!(I18::new(-1).bits(), 0x3FFFF);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct I18(i32);

impl I18 {
    /// Bit width of the lane.
    pub const BITS: u32 = 18;
    /// All 18 lane bits set: the mask a full-override fault uses as `fsel`.
    pub const MASK: u32 = (1 << Self::BITS) - 1;
    /// The most negative representable value, `-2^17`.
    pub const MIN: I18 = I18(-(1 << 17));
    /// The most positive representable value, `2^17 - 1`.
    pub const MAX: I18 = I18((1 << 17) - 1);
    /// Zero.
    pub const ZERO: I18 = I18(0);

    /// Creates a lane value, wrapping `v` into the 18-bit range.
    ///
    /// # Examples
    ///
    /// ```
    /// use nvfi_hwnum::I18;
    /// assert_eq!(I18::new(5).value(), 5);
    /// assert_eq!(I18::new(1 << 18).value(), 0); // wraps modulo 2^18
    /// ```
    #[inline]
    #[must_use]
    pub const fn new(v: i32) -> Self {
        Self::from_bits(v as u32 & Self::MASK)
    }

    /// Reinterprets the low 18 bits of `bits` as a two's-complement value.
    ///
    /// # Examples
    ///
    /// ```
    /// use nvfi_hwnum::I18;
    /// assert_eq!(I18::from_bits(0x3FFFF).value(), -1);
    /// assert_eq!(I18::from_bits(0x20000).value(), -131072);
    /// ```
    #[inline]
    #[must_use]
    pub const fn from_bits(bits: u32) -> Self {
        let b = bits & Self::MASK;
        // Sign-extend bit 17 into the i32.
        let v = if b & (1 << 17) != 0 {
            (b | !Self::MASK) as i32
        } else {
            b as i32
        };
        I18(v)
    }

    /// Computes the product of a signed 8-bit activation and weight on the
    /// lane. `i8 x i8` always fits in 18 bits (|p| <= 16384), so this never
    /// wraps.
    ///
    /// # Examples
    ///
    /// ```
    /// use nvfi_hwnum::I18;
    /// assert_eq!(I18::from_product(-128, 127).value(), -16256);
    /// ```
    #[inline]
    #[must_use]
    pub const fn from_product(a: i8, w: i8) -> Self {
        I18(a as i32 * w as i32)
    }

    /// The sign-extended numeric value of the lane.
    #[inline]
    #[must_use]
    pub const fn value(self) -> i32 {
        self.0
    }

    /// The raw 18 lane bits (two's complement, bit 17 is the sign).
    #[inline]
    #[must_use]
    pub const fn bits(self) -> u32 {
        (self.0 as u32) & Self::MASK
    }

    /// Applies the fault-injector mux to the lane:
    /// `out[i] = fsel[i] ? fdata[i] : self[i]` for each of the 18 wires.
    ///
    /// This mirrors the per-bit multiplexer of the DATE 2025 platform
    /// (`fsel(18)` / `fdata(18)` in its Fig. 1). Bits of `fsel`/`fdata` above
    /// bit 17 are ignored.
    ///
    /// # Examples
    ///
    /// ```
    /// use nvfi_hwnum::I18;
    /// let p = I18::new(100);
    /// // Stuck-at-0 on all wires:
    /// assert_eq!(p.overridden(I18::MASK, 0), I18::ZERO);
    /// // Stuck-at-1 on the sign wire only:
    /// assert_eq!(p.overridden(1 << 17, I18::MASK).value(), 100 - (1 << 18) + (1 << 17));
    /// ```
    #[inline]
    #[must_use]
    pub const fn overridden(self, fsel: u32, fdata: u32) -> Self {
        let fsel = fsel & Self::MASK;
        Self::from_bits((self.bits() & !fsel) | (fdata & fsel))
    }

    /// Wrapping lane addition (modulo 2^18).
    #[inline]
    #[must_use]
    pub const fn wrapping_add(self, rhs: Self) -> Self {
        Self::new(self.0.wrapping_add(rhs.0))
    }

    /// Wrapping lane subtraction (modulo 2^18).
    #[inline]
    #[must_use]
    pub const fn wrapping_sub(self, rhs: Self) -> Self {
        Self::new(self.0.wrapping_sub(rhs.0))
    }
}

impl From<i8> for I18 {
    #[inline]
    fn from(v: i8) -> Self {
        I18(v as i32)
    }
}

impl From<i16> for I18 {
    #[inline]
    fn from(v: i16) -> Self {
        I18(v as i32)
    }
}

impl From<I18> for i32 {
    #[inline]
    fn from(v: I18) -> i32 {
        v.0
    }
}

impl Add for I18 {
    type Output = I18;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        self.wrapping_add(rhs)
    }
}

impl Sub for I18 {
    type Output = I18;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self.wrapping_sub(rhs)
    }
}

impl Neg for I18 {
    type Output = I18;
    #[inline]
    fn neg(self) -> Self {
        I18::new(self.0.wrapping_neg())
    }
}

impl fmt::Debug for I18 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "I18({})", self.0)
    }
}

impl fmt::Display for I18 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for I18 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.bits(), f)
    }
}

impl fmt::UpperHex for I18 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.bits(), f)
    }
}

impl fmt::Binary for I18 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.bits(), f)
    }
}

impl fmt::Octal for I18 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.bits(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn product_extremes_fit() {
        assert_eq!(I18::from_product(-128, -128).value(), 16384);
        assert_eq!(I18::from_product(-128, 127).value(), -16256);
        assert_eq!(I18::from_product(127, 127).value(), 16129);
        assert_eq!(I18::from_product(0, -128).value(), 0);
    }

    #[test]
    fn wrap_at_boundaries() {
        assert_eq!(I18::new(131071).value(), 131071);
        assert_eq!(I18::new(131072).value(), -131072);
        assert_eq!(I18::new(-131072).value(), -131072);
        assert_eq!(I18::new(-131073).value(), 131071);
        assert_eq!(I18::new(1 << 20).value(), 0);
    }

    #[test]
    fn bits_roundtrip_for_negatives() {
        assert_eq!(I18::new(-1).bits(), 0x3FFFF);
        assert_eq!(I18::from_bits(0x3FFFF).value(), -1);
        assert_eq!(I18::new(-2).bits(), 0x3FFFE);
    }

    #[test]
    fn full_override_matches_constant() {
        for v in [-131072i32, -1, 0, 1, 42, 131071] {
            let p = I18::from_product(33, -77);
            let forced = p.overridden(I18::MASK, I18::new(v).bits());
            assert_eq!(forced.value(), v, "forcing {v}");
        }
    }

    #[test]
    fn empty_override_is_identity() {
        let p = I18::new(-4242);
        assert_eq!(p.overridden(0, 0x3FFFF), p);
    }

    #[test]
    fn partial_override_single_bit() {
        let p = I18::new(0); // all wires 0
        let forced = p.overridden(1 << 5, u32::MAX);
        assert_eq!(forced.value(), 32);
        let cleared = I18::new(-1).overridden(1 << 17, 0);
        assert_eq!(cleared.value(), 131071); // sign wire cleared
    }

    #[test]
    fn add_wraps_like_hardware() {
        assert_eq!((I18::MAX + I18::new(1)), I18::MIN);
        assert_eq!((I18::MIN + I18::new(-1)), I18::MAX);
        assert_eq!((I18::new(-5) - I18::new(-5)), I18::ZERO);
        assert_eq!(-I18::MIN, I18::MIN); // -(-2^17) wraps to itself
    }

    #[test]
    fn formatting_is_nonempty() {
        let v = I18::new(-1);
        assert_eq!(format!("{v}"), "-1");
        assert_eq!(format!("{v:x}"), "3ffff");
        assert_eq!(format!("{v:b}"), "111111111111111111");
        assert_eq!(format!("{:?}", I18::ZERO), "I18(0)");
    }

    #[test]
    fn conversions() {
        assert_eq!(I18::from(-128i8).value(), -128);
        assert_eq!(I18::from(-30000i16).value(), -30000);
        assert_eq!(i32::from(I18::MAX), 131071);
    }
}
