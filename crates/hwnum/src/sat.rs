//! Saturation helpers shared across the quantizer, CPU executor and
//! accelerator model.
//!
//! All clamping in the datapath goes through these functions so the semantics
//! (symmetric int8 range `[-128, 127]`, i32 saturation of accumulators when
//! drained) are defined in exactly one place.

/// Saturates to the signed 8-bit activation range `[-128, 127]`.
///
/// # Examples
///
/// ```
/// assert_eq!(nvfi_hwnum::sat::to_i8(300), 127);
/// assert_eq!(nvfi_hwnum::sat::to_i8(-300), -128);
/// assert_eq!(nvfi_hwnum::sat::to_i8(-7), -7);
/// ```
#[inline]
#[must_use]
pub fn to_i8(x: i64) -> i8 {
    x.clamp(i8::MIN as i64, i8::MAX as i64) as i8
}

/// Saturates to the signed 32-bit range.
#[inline]
#[must_use]
pub fn to_i32(x: i64) -> i32 {
    x.clamp(i32::MIN as i64, i32::MAX as i64) as i32
}

/// Clamps a 128-bit intermediate back to `i64`.
#[inline]
#[must_use]
pub fn clamp_i128_to_i64(x: i128) -> i64 {
    x.clamp(i64::MIN as i128, i64::MAX as i128) as i64
}

/// Quantizes a real value to i8 with round-half-away-from-zero and
/// saturation: `clamp(round(x / scale))`.
///
/// # Panics
///
/// Panics if `scale` is not strictly positive (quantization scales are
/// validated at calibration time; a non-positive scale here is a logic error).
#[inline]
#[must_use]
pub fn quantize_f32_to_i8(x: f32, scale: f32) -> i8 {
    assert!(scale > 0.0, "quantization scale must be positive");
    let q = (x / scale).round();
    if q >= 127.0 {
        127
    } else if q <= -128.0 {
        -128
    } else {
        q as i8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i8_saturation() {
        assert_eq!(to_i8(127), 127);
        assert_eq!(to_i8(128), 127);
        assert_eq!(to_i8(-128), -128);
        assert_eq!(to_i8(-129), -128);
        assert_eq!(to_i8(0), 0);
        assert_eq!(to_i8(i64::MAX), 127);
        assert_eq!(to_i8(i64::MIN), -128);
    }

    #[test]
    fn i32_saturation() {
        assert_eq!(to_i32(i64::from(i32::MAX) + 1), i32::MAX);
        assert_eq!(to_i32(i64::from(i32::MIN) - 1), i32::MIN);
        assert_eq!(to_i32(42), 42);
    }

    #[test]
    fn quantize_rounds_and_saturates() {
        assert_eq!(quantize_f32_to_i8(1.0, 0.1), 10);
        assert_eq!(quantize_f32_to_i8(0.05, 0.1), 1); // ties away from zero
        assert_eq!(quantize_f32_to_i8(-0.05, 0.1), -1);
        assert_eq!(quantize_f32_to_i8(100.0, 0.1), 127);
        assert_eq!(quantize_f32_to_i8(-100.0, 0.1), -128);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn quantize_rejects_zero_scale() {
        let _ = quantize_f32_to_i8(1.0, 0.0);
    }
}
