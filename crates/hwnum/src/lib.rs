//! Fixed-width hardware arithmetic for the emulated NVDLA-style datapath.
//!
//! The accelerator modelled by this workspace multiplies signed 8-bit
//! activations with signed 8-bit weights. In the real CMAC pipeline each
//! product is carried on an **18-bit lane** (16 significant bits plus guard
//! bits for the adder tree), and the DATE 2025 fault-injection platform
//! overrides exactly those 18 wires. This crate provides:
//!
//! * [`I18`] — a value on an 18-bit two's-complement lane with wrapping
//!   arithmetic and raw bit access, the unit the fault injector manipulates;
//! * [`Requant`] — the fixed-point (multiplier, shift) re-quantization used by
//!   the SDP post-processing unit to map i32 accumulators back to i8
//!   activations;
//! * [`sat`] — saturation helpers shared by the quantizer, the CPU reference
//!   executor and the accelerator model.
//!
//! # Examples
//!
//! ```
//! use nvfi_hwnum::I18;
//!
//! let p = I18::from_product(-128, -128); // 16384 fits easily in 18 bits
//! assert_eq!(p.value(), 16384);
//! // A fault injector forcing all 18 wires to the constant -1:
//! let faulted = p.overridden(I18::MASK, 0x3FFFF);
//! assert_eq!(faulted.value(), -1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod i18;
mod requant;
pub mod sat;

pub use i18::I18;
pub use requant::{EncodeScaleError, Requant};

/// Number of bits on a multiplier output lane in the modelled CMAC.
pub const LANE_BITS: u32 = 18;
