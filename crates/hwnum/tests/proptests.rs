//! Property-based tests for the hardware arithmetic primitives.

use nvfi_hwnum::{sat, Requant, I18};
use proptest::prelude::*;

proptest! {
    /// Construction wraps exactly like truncating to 18 bits and
    /// sign-extending.
    #[test]
    fn i18_new_wraps_mod_2_18(v in any::<i32>()) {
        let lane = I18::new(v);
        let m = v.rem_euclid(1 << 18);
        let want = if m >= 1 << 17 { m - (1 << 18) } else { m };
        prop_assert_eq!(lane.value(), want);
    }

    /// bits() / from_bits() round-trip.
    #[test]
    fn i18_bits_roundtrip(bits in 0u32..(1 << 18)) {
        prop_assert_eq!(I18::from_bits(bits).bits(), bits);
    }

    /// value() / new() round-trip inside the representable range.
    #[test]
    fn i18_value_roundtrip(v in -(1i32 << 17)..(1 << 17)) {
        prop_assert_eq!(I18::new(v).value(), v);
    }

    /// i8 products always fit without wrapping.
    #[test]
    fn i18_products_never_wrap(a in any::<i8>(), w in any::<i8>()) {
        prop_assert_eq!(I18::from_product(a, w).value(), a as i32 * w as i32);
    }

    /// The override mux is idempotent and a full override forces the value.
    #[test]
    fn i18_override_idempotent(
        v in any::<i32>(),
        fsel in 0u32..(1 << 18),
        fdata in 0u32..(1 << 18),
    ) {
        let p = I18::new(v);
        let once = p.overridden(fsel, fdata);
        let twice = once.overridden(fsel, fdata);
        prop_assert_eq!(once, twice);
        let full = p.overridden(I18::MASK, fdata);
        prop_assert_eq!(full.bits(), fdata);
    }

    /// Overriding never touches deselected wires.
    #[test]
    fn i18_override_preserves_unselected(
        v in any::<i32>(),
        fsel in 0u32..(1 << 18),
        fdata in 0u32..(1 << 18),
    ) {
        let p = I18::new(v);
        let out = p.overridden(fsel, fdata);
        prop_assert_eq!(out.bits() & !fsel & I18::MASK, p.bits() & !fsel & I18::MASK);
    }

    /// Lane addition is commutative and wraps consistently with i32 math.
    #[test]
    fn i18_add_commutative(a in any::<i32>(), b in any::<i32>()) {
        let (x, y) = (I18::new(a), I18::new(b));
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!((x + y).value(), I18::new(a.wrapping_add(b)).value());
    }

    /// Requantization tracks the real-valued product within one unit.
    #[test]
    fn requant_tracks_float(
        scale in 1e-6f64..100.0,
        x in -1_000_000i64..1_000_000,
    ) {
        let r = Requant::from_scale(scale).unwrap();
        let want = x as f64 * scale;
        let got = r.apply(x) as f64;
        prop_assert!((want - got).abs() <= want.abs() * 1e-6 + 1.0,
            "scale={} x={} want={} got={}", scale, x, want, got);
    }

    /// apply_i8 equals apply followed by saturation.
    #[test]
    fn requant_i8_consistent(scale in 1e-4f64..4.0, x in any::<i32>()) {
        let r = Requant::from_scale(scale).unwrap();
        prop_assert_eq!(r.apply_i8(x as i64), sat::to_i8(r.apply(x as i64)));
    }

    /// Requantization is odd: f(-x) == -f(x) (round-half-away-from-zero is
    /// symmetric).
    #[test]
    fn requant_is_odd(scale in 1e-4f64..4.0, x in -1_000_000i64..1_000_000) {
        let r = Requant::from_scale(scale).unwrap();
        prop_assert_eq!(r.apply(-x), -r.apply(x));
    }

    /// Saturation is monotone.
    #[test]
    fn sat_monotone(a in any::<i64>(), b in any::<i64>()) {
        if a <= b {
            prop_assert!(sat::to_i8(a) <= sat::to_i8(b));
            prop_assert!(sat::to_i32(a) <= sat::to_i32(b));
        }
    }
}
