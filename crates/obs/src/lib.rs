//! `nvfi_obs` — the observability core shared by every layer of the fabric.
//!
//! The crate has three pieces, all std-only and dependency-free:
//!
//! * [`metrics`] — a process-wide registry of named counters, gauges and
//!   fixed log2-bucket histograms, rendered as Prometheus text exposition.
//!   The scattered per-crate test probes (`quantization_passes`,
//!   `golden_prefix_passes`, the wire serialize-once counters) are thin
//!   wrappers over registry counters, so tests and dashboards read the
//!   same numbers.
//! * [`trace`] — a lock-light span/event recorder ("flight recorder").
//!   Emitting threads append to a thread-local buffer; buffers drain into
//!   one bounded global ring. When the ring is full the *oldest* events
//!   are dropped (and counted), never the newest. The whole recorder is
//!   gated on a single relaxed atomic, so a disabled span costs one load
//!   and no clock read. Snapshots export as chrome-trace JSON loadable in
//!   `about:tracing` / Perfetto.
//! * [`progress`] — the single human-facing renderer for campaign
//!   progress. All verbose output across core/dist funnels through one
//!   mutex here, which both prevents interleaved-line corruption and lets
//!   the done/total tick counter stay monotonic with the printed line.
//!
//! # Ring memory model
//!
//! Events written by a thread become visible to exporters via two
//! ordinary mutex hand-offs: the thread-local buffer flushes into the
//! global ring under the ring mutex (on overflow past the flush
//! watermark, and on thread exit via the buffer's `Drop`), and
//! [`trace::snapshot`] clones the ring under the same mutex after first
//! flushing the *calling* thread's buffer. There is no lock-free
//! publication: a snapshot therefore observes every event flushed before
//! it, plus the caller's own unflushed tail, but may miss the most recent
//! (< watermark) events of other still-running threads. Campaign code
//! exports after joining its workers, so completed runs lose nothing.
//! The enable flag and the drop counter use relaxed atomics — they gate
//! and count, they do not order.

#![forbid(unsafe_code)]

pub mod metrics;
pub mod progress;
pub mod trace;
