//! The single renderer for human-facing progress output.
//!
//! Core and dist emit structured [`Event`]s; this module owns the one
//! mutex under which they are formatted and written to stderr. That
//! serialization is what keeps concurrently logging pool threads, the
//! dist acceptor and connection threads from interleaving partial lines,
//! and [`emit_tick`] extends the same lock over the done-counter
//! increment so the printed `done/total` sequence is monotonic.
//!
//! This is the only place in core/dist allowed to call `eprintln!`
//! (enforced by the `bare-eprintln` nvfi-lint rule).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

static RENDER: Mutex<()> = Mutex::new(());

fn render_lock() -> MutexGuard<'static, ()> {
    RENDER.lock().unwrap_or_else(|e| e.into_inner())
}

/// A structured progress event. Rendering is centralized in this module;
/// emit sites describe *what happened*, not how it prints.
#[derive(Clone, Debug)]
pub enum Event {
    /// An in-process campaign work item finished.
    ItemDone {
        done: usize,
        total: usize,
        worker: usize,
        detail: String,
    },
    /// A distributed shard landed and merged into its campaign.
    ShardLanded {
        client: u64,
        done: usize,
        total: usize,
        worker: usize,
        item: u32,
        start: u32,
        end: u32,
    },
    /// A worker was lost mid-shard; the shard went back on the queue.
    ShardRequeued {
        worker: usize,
        client: u64,
        item: u32,
        start: u32,
        end: u32,
        why: String,
    },
    /// A worker joined an already-running campaign.
    WorkerAdmitted { worker: usize },
    /// A campaign resumed from a checkpoint file.
    Resumed {
        path: String,
        done: usize,
        total: usize,
    },
    /// A checkpoint file belonged to a different campaign.
    CheckpointMismatch { path: String },
    /// The whole fleet was lost; falling back to the in-process pool.
    FleetDegraded { incomplete: usize },
    /// One `nvfi-top` line summarizing the fleet (periodic, `NVFI_METRICS=top`).
    FleetSummary {
        workers: usize,
        clients: usize,
        dispatched: u64,
        shipped: u64,
        audits: u64,
        mismatches: u64,
        quarantined: u64,
        cache_hits: u64,
    },
    /// Anything without dedicated structure (warnings, one-shot notes).
    Note { text: String },
}

fn render(e: &Event) -> String {
    match e {
        Event::ItemDone {
            done,
            total,
            worker,
            detail,
        } => {
            format!("  fi {done}/{total} [worker {worker}]: {detail}")
        }
        Event::ShardLanded {
            client,
            done,
            total,
            worker,
            item,
            start,
            end,
        } => {
            format!(
                "  fi client {client} {done}/{total} [worker {worker}]: item {item} images {start}..{end}"
            )
        }
        Event::ShardRequeued {
            worker,
            client,
            item,
            start,
            end,
            why,
        } => {
            format!(
                "  worker {worker} lost mid-shard (client {client} item {item} images {start}..{end}): {why}; requeued"
            )
        }
        Event::WorkerAdmitted { worker } => {
            format!("  worker {worker} admitted mid-campaign")
        }
        Event::Resumed { path, done, total } => {
            format!("  resuming from {path}: {done}/{total} shards already done")
        }
        Event::CheckpointMismatch { path } => {
            format!("  checkpoint {path} belongs to a different campaign; starting fresh")
        }
        Event::FleetDegraded { incomplete } => {
            format!(
                "  fleet lost with {incomplete} task(s) outstanding; degrading to the in-process campaign"
            )
        }
        Event::FleetSummary {
            workers,
            clients,
            dispatched,
            shipped,
            audits,
            mismatches,
            quarantined,
            cache_hits,
        } => {
            format!(
                "nvfi-top: {workers} worker(s) {clients} client(s) | dispatched {dispatched} shipped {shipped} cache-hits {cache_hits} | audits {audits} mismatches {mismatches} quarantined {quarantined}"
            )
        }
        Event::Note { text } => text.clone(),
    }
}

/// Format and print one event under the renderer lock.
pub fn emit(e: &Event) {
    let line = render(e);
    let _g = render_lock();
    eprintln!("{line}");
}

/// Convenience: emit a free-form [`Event::Note`].
pub fn note(text: impl Into<String>) {
    emit(&Event::Note { text: text.into() });
}

/// Atomically advance `done` and print the event built from the new
/// count. The counter increment happens *under* the renderer lock, so
/// printed `done/total` lines are strictly monotonic even when many pool
/// threads finish simultaneously. Returns the new count.
pub fn emit_tick(done: &AtomicUsize, mk: impl FnOnce(usize) -> Event) -> usize {
    let _g = render_lock();
    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
    let line = render(&mk(finished));
    eprintln!("{line}");
    finished
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_counter_is_monotonic_under_contention() {
        let done = AtomicUsize::new(0);
        let seen = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..50 {
                        let _g = render_lock();
                        let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                        seen.lock().unwrap().push(n);
                    }
                });
            }
        });
        let seen = seen.into_inner().unwrap();
        // Under the render lock every observed count is strictly increasing.
        assert!(seen.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(done.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn renders_preserve_worker_attribution() {
        let line = render(&Event::ShardLanded {
            client: 3,
            done: 5,
            total: 9,
            worker: 2,
            item: 4,
            start: 0,
            end: 16,
        });
        assert_eq!(line, "  fi client 3 5/9 [worker 2]: item 4 images 0..16");
        let line = render(&Event::ItemDone {
            done: 1,
            total: 2,
            worker: 0,
            detail: "StuckAt0 on 1 mult(s) -> 93.8% (sdc 0%)".into(),
        });
        assert!(line.starts_with("  fi 1/2 [worker 0]: "));
    }
}
