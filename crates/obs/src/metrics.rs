//! Process-wide metrics registry: named counters, gauges and log2-bucket
//! histograms with a Prometheus text exposition.
//!
//! Handles are cheap `Arc` clones over atomics; the registry lock is only
//! taken at registration (and rendering) time, so the hot path — bumping a
//! counter or observing a histogram sample — is a relaxed atomic op.
//! Callers are expected to cache handles in a `OnceLock` at the call site:
//!
//! ```
//! use std::sync::OnceLock;
//! use nvfi_obs::metrics::{self, Counter};
//!
//! static PASSES: OnceLock<Counter> = OnceLock::new();
//! fn passes() -> &'static Counter {
//!     PASSES.get_or_init(|| metrics::counter("quantization_passes"))
//! }
//! passes().inc();
//! assert!(metrics::render_prometheus().contains("quantization_passes"));
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depths, live workers).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets. Bucket `i` counts samples `v` with
/// `v < 2^i` (cumulatively: bit-length of `v` ≤ `i`), so 32 buckets cover
/// microsecond timings up to ~35 minutes before the overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 32;

struct HistogramInner {
    /// `buckets[i]` counts samples whose bit length is exactly `i`
    /// (i.e. `2^(i-1) <= v < 2^i`, with `v = 0` in bucket 0). The
    /// Prometheus rendering accumulates these into cumulative `le` series.
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A histogram with fixed log2 buckets.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    pub fn observe(&self, v: u64) {
        let bits = (u64::BITS - v.leading_zeros()) as usize;
        let idx = bits.min(HISTOGRAM_BUCKETS - 1);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    #[must_use]
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

static REGISTRY: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();

fn registry() -> MutexGuard<'static, BTreeMap<String, Metric>> {
    REGISTRY
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Fetch (registering on first use) the counter named `name`.
///
/// Panics if `name` is already registered as a different metric kind —
/// that is a programming error, not a runtime condition.
#[must_use]
pub fn counter(name: &str) -> Counter {
    let mut reg = registry();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))))
    {
        Metric::Counter(c) => c.clone(),
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// Fetch (registering on first use) the gauge named `name`.
#[must_use]
pub fn gauge(name: &str) -> Gauge {
    let mut reg = registry();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicI64::new(0)))))
    {
        Metric::Gauge(g) => g.clone(),
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// Fetch (registering on first use) the histogram named `name`.
#[must_use]
pub fn histogram(name: &str) -> Histogram {
    let mut reg = registry();
    match reg.entry(name.to_string()).or_insert_with(|| {
        Metric::Histogram(Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        })))
    }) {
        Metric::Histogram(h) => h.clone(),
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// Render every registered metric as Prometheus text exposition
/// (metrics are prefixed `nvfi_`; histograms get cumulative `le` buckets
/// plus `_sum`/`_count` series).
#[must_use]
pub fn render_prometheus() -> String {
    let reg = registry();
    let mut out = String::new();
    for (name, metric) in reg.iter() {
        match metric {
            Metric::Counter(c) => {
                let _ = writeln!(out, "# TYPE nvfi_{name} counter");
                let _ = writeln!(out, "nvfi_{name} {}", c.get());
            }
            Metric::Gauge(g) => {
                let _ = writeln!(out, "# TYPE nvfi_{name} gauge");
                let _ = writeln!(out, "nvfi_{name} {}", g.get());
            }
            Metric::Histogram(h) => {
                let _ = writeln!(out, "# TYPE nvfi_{name} histogram");
                let mut cum = 0u64;
                for (i, b) in h.0.buckets.iter().enumerate() {
                    cum += b.load(Ordering::Relaxed);
                    if i + 1 == HISTOGRAM_BUCKETS {
                        let _ = writeln!(out, "nvfi_{name}_bucket{{le=\"+Inf\"}} {cum}");
                    } else {
                        // Bucket i holds bit-lengths <= i, i.e. v < 2^i.
                        let le = (1u64 << i) - 1;
                        let _ = writeln!(out, "nvfi_{name}_bucket{{le=\"{le}\"}} {cum}");
                    }
                }
                let _ = writeln!(out, "nvfi_{name}_sum {}", h.sum());
                let _ = writeln!(out, "nvfi_{name}_count {}", h.count());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip_and_render() {
        let c = counter("test_metric_counter");
        let before = c.get();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), before + 5);
        // A second fetch observes the same underlying cell.
        assert_eq!(counter("test_metric_counter").get(), before + 5);
        let text = render_prometheus();
        assert!(text.contains("# TYPE nvfi_test_metric_counter counter"));
        assert!(text.contains(&format!("nvfi_test_metric_counter {}", before + 5)));
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = gauge("test_metric_gauge");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let h = histogram("test_metric_histo");
        for v in [0u64, 1, 2, 3, 900, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        let text = render_prometheus();
        // v=0 and v=1 land below le=1; everything lands below +Inf.
        assert!(text.contains("nvfi_test_metric_histo_bucket{le=\"1\"} 2"));
        assert!(text.contains("nvfi_test_metric_histo_bucket{le=\"+Inf\"} 6"));
        assert!(text.contains("nvfi_test_metric_histo_count 6"));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let _ = counter("test_metric_kind_clash");
        let _ = gauge("test_metric_kind_clash");
    }
}
