//! The flight recorder: a lock-light span/event tracer with a bounded
//! global ring and chrome-trace JSON export.
//!
//! Emit sites create RAII [`Span`]s or fire instant [`event`]s. When
//! tracing is disabled (the default) both cost a single relaxed atomic
//! load — no clock read, no allocation. When enabled, completed spans are
//! appended to a thread-local buffer that drains into the global ring
//! every [`FLUSH_AT`] events and on thread exit; see the crate docs for
//! the ring's memory model.
//!
//! Enabling:
//! * `NVFI_TRACE=1` — record only (programmatic snapshot/export).
//! * `NVFI_TRACE=path.json` — record, and campaign entry points export a
//!   chrome-trace JSON file to `path.json` on completion (load it in
//!   `about:tracing` or Perfetto).
//! * [`set_enabled`] — programmatic override (benches, tests).

use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, Once, OnceLock};
use std::time::Instant;

use crate::metrics::{self, Counter};

/// Capacity of the global ring. Overflow drops the *oldest* events and
/// bumps the `trace_dropped` counter.
pub const RING_CAP: usize = 65_536;

/// Thread-local buffer watermark: buffers drain into the ring once they
/// hold this many events (and on thread exit).
pub const FLUSH_AT: usize = 128;

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// Identity attached to every span/event, inherited from the emitting
/// thread's context (see [`with_ids`]). Zero means "unset".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Ids {
    pub campaign: u64,
    pub client: u64,
    pub worker: u64,
    pub shard: u64,
}

/// What a [`TraceEvent`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A duration (chrome-trace `ph:"X"`).
    Span,
    /// An instant (chrome-trace `ph:"i"`).
    Instant,
}

/// One recorded event. `ts_us`/`dur_us` are microseconds relative to the
/// process-wide [`epoch`].
#[derive(Clone, Debug)]
pub struct TraceEvent {
    pub name: Cow<'static, str>,
    pub kind: EventKind,
    pub ts_us: u64,
    pub dur_us: u64,
    pub tid: u64,
    pub ids: Ids,
}

thread_local! {
    static CONTEXT: Cell<Ids> = const { Cell::new(Ids { campaign: 0, client: 0, worker: 0, shard: 0 }) };
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static BUFFER: BufferGuard = const { BufferGuard(RefCell::new(Vec::new())) };
}

/// Thread-local event buffer; `Drop` flushes the tail into the ring when
/// the owning thread exits.
struct BufferGuard(RefCell<Vec<TraceEvent>>);

impl Drop for BufferGuard {
    fn drop(&mut self) {
        let events = std::mem::take(&mut *self.0.borrow_mut());
        if !events.is_empty() {
            flush_into_ring(events);
        }
    }
}

fn ring() -> MutexGuard<'static, VecDeque<TraceEvent>> {
    static RING: OnceLock<Mutex<VecDeque<TraceEvent>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn dropped_counter() -> &'static Counter {
    static DROPPED: OnceLock<Counter> = OnceLock::new();
    DROPPED.get_or_init(|| metrics::counter("trace_dropped"))
}

/// The process-wide trace epoch: all timestamps are microseconds since
/// the first observability call in the process.
pub fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since [`epoch`].
#[must_use]
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Is the recorder on? First call latches the `NVFI_TRACE` environment
/// knob; [`set_enabled`] overrides it afterwards.
#[must_use]
pub fn is_enabled() -> bool {
    ENV_INIT.call_once(|| {
        if std::env::var_os("NVFI_TRACE").is_some_and(|v| !v.is_empty()) {
            ENABLED.store(true, Ordering::Relaxed);
        }
    });
    ENABLED.load(Ordering::Relaxed)
}

/// Programmatically switch the recorder on/off (wins over `NVFI_TRACE`).
pub fn set_enabled(on: bool) {
    ENV_INIT.call_once(|| {});
    ENABLED.store(on, Ordering::Relaxed);
}

/// The chrome-trace output path, when `NVFI_TRACE` names a file
/// (anything other than empty/`1`).
#[must_use]
pub fn export_path() -> Option<PathBuf> {
    let v = std::env::var("NVFI_TRACE").ok()?;
    if v.is_empty() || v == "1" {
        return None;
    }
    Some(PathBuf::from(v))
}

/// Export to the `NVFI_TRACE` path if one is configured. Campaign entry
/// points call this on completion; errors are reported as a progress
/// note rather than failing the campaign.
pub fn maybe_export() {
    if let Some(path) = export_path() {
        if let Err(e) = export_chrome(&path) {
            crate::progress::note(format!(
                "nvfi-obs: trace export to {} failed: {e}",
                path.display()
            ));
        }
    }
}

/// Install `ids` as the current thread's span context; the returned guard
/// restores the previous context on drop (contexts nest).
#[must_use]
pub fn with_ids(ids: Ids) -> IdsGuard {
    let prev = CONTEXT.get();
    CONTEXT.set(ids);
    IdsGuard { prev }
}

/// Current thread's span context.
#[must_use]
pub fn current_ids() -> Ids {
    CONTEXT.get()
}

pub struct IdsGuard {
    prev: Ids,
}

impl Drop for IdsGuard {
    fn drop(&mut self) {
        CONTEXT.set(self.prev);
    }
}

/// An RAII span: records a duration event from creation to drop. When the
/// recorder is off at creation this is inert (no clock read).
pub struct Span {
    name: &'static str,
    start_us: u64,
    live: bool,
}

/// Open a span named `name`.
#[must_use]
pub fn span(name: &'static str) -> Span {
    if !is_enabled() {
        return Span {
            name,
            start_us: 0,
            live: false,
        };
    }
    Span {
        name,
        start_us: now_us(),
        live: true,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.live {
            let end = now_us();
            push(TraceEvent {
                name: Cow::Borrowed(self.name),
                kind: EventKind::Span,
                ts_us: self.start_us,
                dur_us: end.saturating_sub(self.start_us),
                tid: TID.with(|t| *t),
                ids: CONTEXT.get(),
            });
        }
    }
}

/// Fire an instant event named `name`.
pub fn event(name: &'static str) {
    if is_enabled() {
        push(TraceEvent {
            name: Cow::Borrowed(name),
            kind: EventKind::Instant,
            ts_us: now_us(),
            dur_us: 0,
            tid: TID.with(|t| *t),
            ids: CONTEXT.get(),
        });
    }
}

/// Record a span observed elsewhere (e.g. a worker's span summary shipped
/// over the wire) with explicit timestamp, lane and identity.
pub fn import_span(
    name: impl Into<Cow<'static, str>>,
    ts_us: u64,
    dur_us: u64,
    tid: u64,
    ids: Ids,
) {
    if is_enabled() {
        push(TraceEvent {
            name: name.into(),
            kind: EventKind::Span,
            ts_us,
            dur_us,
            tid,
            ids,
        });
    }
}

fn push(ev: TraceEvent) {
    let flush = BUFFER.with(|b| {
        let mut buf = b.0.borrow_mut();
        buf.push(ev);
        if buf.len() >= FLUSH_AT {
            Some(std::mem::take(&mut *buf))
        } else {
            None
        }
    });
    if let Some(events) = flush {
        flush_into_ring(events);
    }
}

fn flush_into_ring(events: Vec<TraceEvent>) {
    let mut ring = ring();
    let mut dropped = 0u64;
    for ev in events {
        if ring.len() >= RING_CAP {
            ring.pop_front();
            dropped += 1;
        }
        ring.push_back(ev);
    }
    drop(ring);
    if dropped > 0 {
        dropped_counter().add(dropped);
    }
}

/// Flush the calling thread's buffer into the ring.
pub fn flush() {
    let events = BUFFER.with(|b| std::mem::take(&mut *b.0.borrow_mut()));
    if !events.is_empty() {
        flush_into_ring(events);
    }
}

/// Total events evicted from the ring by overflow, process-wide.
#[must_use]
pub fn dropped() -> u64 {
    dropped_counter().get()
}

/// Flush the calling thread, then clone the ring contents (oldest first).
/// The ring is *not* drained: repeated snapshots/exports are cumulative.
#[must_use]
pub fn snapshot() -> Vec<TraceEvent> {
    flush();
    ring().iter().cloned().collect()
}

/// Drop every recorded event (tests and benches that want isolation).
pub fn clear() {
    flush();
    ring().clear();
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Write a chrome-trace JSON array of the current snapshot to `path`.
/// Returns the number of events written. The file loads directly in
/// `about:tracing` and Perfetto.
pub fn export_chrome(path: &Path) -> io::Result<usize> {
    use std::fmt::Write as _;
    let events = snapshot();
    let mut out = String::with_capacity(events.len() * 128 + 2);
    out.push_str("[\n");
    for (i, ev) in events.iter().enumerate() {
        let ph = match ev.kind {
            EventKind::Span => "X",
            EventKind::Instant => "i",
        };
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{}",
            json_escape(&ev.name),
            ph,
            ev.tid,
            ev.ts_us,
        );
        match ev.kind {
            EventKind::Span => {
                let _ = write!(out, ",\"dur\":{}", ev.dur_us);
            }
            EventKind::Instant => out.push_str(",\"s\":\"t\""),
        }
        let _ = write!(
            out,
            ",\"args\":{{\"campaign\":{},\"client\":{},\"worker\":{},\"shard\":{}}}}}",
            ev.ids.campaign, ev.ids.client, ev.ids.worker, ev.ids.shard,
        );
        out.push_str(if i + 1 == events.len() { "\n" } else { ",\n" });
    }
    out.push(']');
    std::fs::write(path, out)?;
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recorder is process-global state (one ring, one enable bit), so
    /// tests that toggle it serialize on this lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock_recorder() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn concurrent_emit_never_panics_or_deadlocks() {
        let _g = lock_recorder();
        set_enabled(true);
        clear();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let _ctx = with_ids(Ids {
                        worker: 7,
                        ..Ids::default()
                    });
                    for i in 0..500 {
                        let _s = span("test.span");
                        if i % 16 == 0 {
                            event("test.instant");
                        }
                        if i % 64 == 0 {
                            flush();
                        }
                    }
                    // `thread::scope` may return before TLS destructors run,
                    // so flush the tail explicitly rather than relying on
                    // BufferGuard's exit flush here.
                    flush();
                });
            }
        });
        let events = snapshot();
        // 8 threads × (500 spans + ceil(500/16) instants), all landed (or
        // evicted — this test alone stays far below RING_CAP).
        assert_eq!(events.len(), 8 * (500 + 32));
        assert!(events.iter().all(|e| e.ids.worker == 7));
        set_enabled(false);
        clear();
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let _g = lock_recorder();
        set_enabled(true);
        clear();
        let dropped_before = dropped();
        let extra = 100u64;
        for i in 0..(RING_CAP as u64 + extra) {
            // Distinct timestamps make eviction order observable.
            import_span("test.fill", i, 1, 1, Ids::default());
        }
        flush();
        let events = snapshot();
        assert_eq!(events.len(), RING_CAP);
        // The *oldest* events were evicted: the survivors start at `extra`.
        assert_eq!(events.first().unwrap().ts_us, extra);
        assert_eq!(events.last().unwrap().ts_us, RING_CAP as u64 + extra - 1);
        assert_eq!(dropped() - dropped_before, extra);
        set_enabled(false);
        clear();
    }

    #[test]
    fn disabled_recorder_records_nothing_and_skips_the_clock() {
        let _g = lock_recorder();
        set_enabled(false);
        clear();
        for _ in 0..100_000 {
            let s = span("test.disabled");
            // Inert span: no clock read happened at creation.
            assert_eq!(s.start_us, 0);
            assert!(!s.live);
            event("test.disabled.instant");
        }
        flush();
        assert!(snapshot().is_empty());
    }

    #[test]
    fn id_contexts_nest_and_restore() {
        let _g = lock_recorder();
        let outer = Ids {
            campaign: 1,
            ..Ids::default()
        };
        let inner = Ids {
            campaign: 1,
            shard: 4,
            ..Ids::default()
        };
        let base = current_ids();
        {
            let _a = with_ids(outer);
            assert_eq!(current_ids(), outer);
            {
                let _b = with_ids(inner);
                assert_eq!(current_ids(), inner);
            }
            assert_eq!(current_ids(), outer);
        }
        assert_eq!(current_ids(), base);
    }

    #[test]
    fn chrome_export_is_wellformed_and_cumulative() {
        let _g = lock_recorder();
        set_enabled(true);
        clear();
        import_span(
            "test.export \"quoted\"",
            10,
            5,
            3,
            Ids {
                worker: 3,
                ..Ids::default()
            },
        );
        event("test.export.instant");
        let path =
            std::env::temp_dir().join(format!("nvfi_obs_export_{}.json", std::process::id()));
        let first = export_chrome(&path).unwrap();
        assert_eq!(first, 2);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("[\n") && text.ends_with(']'));
        assert!(text.contains("\"name\":\"test.export \\\"quoted\\\"\""));
        assert!(text.contains("\"ph\":\"X\"") && text.contains("\"dur\":5"));
        assert!(text.contains("\"ph\":\"i\"") && text.contains("\"s\":\"t\""));
        assert!(text.contains("\"worker\":3"));
        // Snapshots are cumulative: a later export still has the old events.
        event("test.export.later");
        let second = export_chrome(&path).unwrap();
        assert_eq!(second, 3);
        let _ = std::fs::remove_file(&path);
        set_enabled(false);
        clear();
    }
}
