//! Smoke tests: every experiment driver runs end to end on a quick
//! configuration and writes its result files.

use zynq_nvdla_fi::nvfi::experiments::{
    run_fig2, run_fig3, run_speedup, run_table1, ExperimentConfig,
};

fn quick(out: &str) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick();
    cfg.out_dir = std::env::temp_dir().join(out);
    cfg
}

#[test]
fn table1_smoke() {
    let cfg = quick("nvfi_smoke_t1");
    let r = run_table1(&cfg).unwrap();
    r.save(&cfg.out_dir).unwrap();
    assert!(cfg.out_dir.join("table1.csv").exists());
    assert!(cfg.out_dir.join("table1.json").exists());
    // The modelled accelerator is faster than the single-threaded host CPU
    // reference (the Table I shape).
    let cpu_1t = r.latency[0].ms;
    let accel = r.latency[2].ms;
    assert!(
        accel < cpu_1t,
        "modelled accelerator ({accel:.2} ms) should beat 1-thread CPU ({cpu_1t:.2} ms)"
    );
}

#[test]
fn fig2_smoke() {
    let cfg = quick("nvfi_smoke_f2");
    let r = run_fig2(&cfg).unwrap();
    r.save(&cfg.out_dir).unwrap();
    assert!(cfg.out_dir.join("fig2.json").exists());
    // Drops are bounded and groups ordered by k.
    for w in r.groups.windows(2) {
        assert!(w[0].k <= w[1].k);
    }
    for g in &r.groups {
        assert!(g.drops.iter().all(|d| (-100.0..=100.0).contains(d)));
    }
}

#[test]
fn fig3_smoke() {
    let cfg = quick("nvfi_smoke_f3");
    let r = run_fig3(&cfg).unwrap();
    r.save(&cfg.out_dir).unwrap();
    assert_eq!(r.maps.len(), 3);
    for (_, map) in &r.maps {
        assert_eq!((map.rows(), map.cols()), (8, 8));
    }
    assert_eq!(r.worst_cells().len(), 3);
    assert!(cfg.out_dir.join("fig3.csv").exists());
}

#[test]
fn speedup_smoke() {
    let cfg = quick("nvfi_smoke_sp");
    let r = run_speedup(&cfg).unwrap();
    r.save(&cfg.out_dir).unwrap();
    assert!(cfg.out_dir.join("speedup.json").exists());
    assert!(
        r.speedup() > 1.0,
        "speedup {} should exceed 1x",
        r.speedup()
    );
}
