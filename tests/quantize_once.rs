//! The quantize-once guarantee, asserted through the
//! `nvfi_quant::batch::quantization_passes` probe: one campaign performs
//! exactly **one** f32 → i8 quantization of its evaluation set, no matter
//! how many fault configurations, fault kinds, threads or device shards it
//! schedules.
//!
//! The probe counter is process-wide, so this test lives in its own
//! integration-test binary (cargo runs test binaries one at a time): no
//! concurrently running test can quantize in between the two counter reads.

use zynq_nvdla_fi::nvfi::campaign::{Campaign, CampaignSpec, TargetSelection};
use zynq_nvdla_fi::nvfi::PlatformConfig;
use zynq_nvdla_fi::nvfi_accel::FaultKind;
use zynq_nvdla_fi::nvfi_compiler::regmap::MultId;
use zynq_nvdla_fi::nvfi_dataset::{SynthCifar, SynthCifarConfig};
use zynq_nvdla_fi::nvfi_quant::batch::quantization_passes;

#[test]
fn campaign_quantizes_the_eval_set_exactly_once() {
    let q = zynq_nvdla_fi::nvfi::experiments::untrained_quant_model(4, 7);
    let data = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 10,
        ..Default::default()
    })
    .generate();
    // 2 target sets x 2 kinds = 4 work items, sharded over 3 threads: the
    // seed path would have re-quantized (at least) once per work item per
    // shard.
    let spec = CampaignSpec {
        selection: TargetSelection::Fixed(vec![
            vec![MultId::new(0, 1)],
            vec![MultId::new(2, 3), MultId::new(5, 6)],
        ]),
        kinds: vec![FaultKind::StuckAtZero, FaultKind::Constant(-1)],
        eval_images: 10,
        threads: 3,
        ..Default::default()
    };
    let campaign = Campaign::new(&q, PlatformConfig::default());

    let before = quantization_passes();
    let result = campaign.run(&spec, &data.test).unwrap();
    let after = quantization_passes();

    assert_eq!(result.records.len(), 4);
    assert_eq!(result.total_inferences, 5 * 10);
    assert_eq!(
        after - before,
        1,
        "a campaign must quantize its evaluation set exactly once \
         (the QuantizedEvalSet built in Campaign::run) — any extra pass \
         means per-work-item or per-shard re-quantization crept back in"
    );

    // Same guarantee when the pool degenerates to a single device.
    let single = CampaignSpec { threads: 1, ..spec };
    let before = quantization_passes();
    let _ = campaign.run(&single, &data.test).unwrap();
    assert_eq!(quantization_passes() - before, 1);
}
