//! Cross-crate fault-semantics tests: the properties that make the
//! hardware-mapped platform more faithful than graph-level software FI.

use zynq_nvdla_fi::nvfi::{EmulationPlatform, PlatformConfig};
use zynq_nvdla_fi::nvfi_accel::{FaultConfig, FaultKind};
use zynq_nvdla_fi::nvfi_compiler::regmap::MultId;
use zynq_nvdla_fi::nvfi_dataset::{SynthCifar, SynthCifarConfig};
use zynq_nvdla_fi::nvfi_quant::swfi::GraphFault;
use zynq_nvdla_fi::nvfi_quant::QuantModel;

fn fixture() -> (QuantModel, zynq_nvdla_fi::nvfi_dataset::TrainTest) {
    let q = zynq_nvdla_fi::nvfi::experiments::untrained_quant_model(8, 21);
    let data = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 6,
        ..Default::default()
    })
    .generate();
    (q, data)
}

/// A single faulty multiplier corrupts *multiple layers* at once (the same
/// physical lane is reused everywhere). Graph-level FI cannot express this:
/// zeroing one op's channel touches exactly one layer's output.
#[test]
fn hardware_fault_couples_layers_graph_fault_does_not() {
    let (q, data) = fixture();
    let img = data.test.images.slice_image(0);
    let qin = q.quantize_input(&img);

    // Hardware fault on one multiplier.
    let mut platform = EmulationPlatform::assemble(&q, PlatformConfig::default()).unwrap();
    let clean = platform.run(&img).unwrap().logits;
    platform.inject(&FaultConfig::new(
        vec![MultId::new(0, 0)],
        FaultKind::Constant(-1),
    ));
    let hw = platform.run(&img).unwrap().logits;
    assert_ne!(
        clean, hw,
        "a permanent multiplier fault must perturb the logits"
    );

    // Graph-level approximation: stuck-at-0 on one output channel of the
    // first conv. It produces *some* perturbation but generally a different
    // one — the point of the comparison.
    let sw = zynq_nvdla_fi::nvfi_quant::exec::forward_with_graph_faults(
        &q,
        &qin,
        1,
        &[GraphFault::StuckZeroChannel { op: 0, channel: 0 }],
    );
    assert_ne!(
        sw[0], hw,
        "graph-level FI should not coincide with the mapped hardware fault"
    );
}

/// Injecting value 0 on every multiplier of every MAC makes all conv outputs
/// collapse to pure bias: an extreme but analytically checkable case.
#[test]
fn all_multipliers_stuck_at_zero_kills_information() {
    let (q, data) = fixture();
    let mut platform = EmulationPlatform::assemble(&q, PlatformConfig::default()).unwrap();
    platform.inject(&FaultConfig::new(
        MultId::all().collect(),
        FaultKind::StuckAtZero,
    ));
    // Every image now produces identical logits: no input information
    // survives a fully dead MAC array.
    let a = platform
        .run(&data.test.images.slice_image(0))
        .unwrap()
        .logits;
    let b = platform
        .run(&data.test.images.slice_image(1))
        .unwrap()
        .logits;
    let c = platform
        .run(&data.test.images.slice_image(2))
        .unwrap()
        .logits;
    assert_eq!(a, b);
    assert_eq!(b, c);
}

/// Fault effects grow monotonically in scope: faulting a superset of
/// multipliers can only touch a superset of output channels (sanity on the
/// mapping arithmetic, checked through the public API).
#[test]
fn larger_target_sets_perturb_at_least_as_many_logits() {
    let (q, data) = fixture();
    let img = data.test.images.slice_image(0);
    let mut platform = EmulationPlatform::assemble(&q, PlatformConfig::default()).unwrap();
    let clean = platform.run(&img).unwrap().logits;

    let changed = |platform: &mut EmulationPlatform, targets: Vec<MultId>| -> usize {
        platform.inject(&FaultConfig::new(targets, FaultKind::Constant(131071)));
        let out = platform.run(&img).unwrap().logits;
        platform.clear_faults();
        clean.iter().zip(&out).filter(|(a, b)| a != b).count()
    };

    let one = changed(&mut platform, vec![MultId::new(3, 3)]);
    let all_in_mac: Vec<MultId> = (0..8).map(|j| MultId::new(3, j)).collect();
    let many = changed(&mut platform, all_in_mac);
    assert!(
        many >= one,
        "faulting all of MAC 4 ({many}) vs one lane ({one})"
    );
}

/// The campaign driver and direct injection agree (no state leaks between
/// campaign records).
#[test]
fn campaign_records_match_direct_injection() {
    use zynq_nvdla_fi::nvfi::campaign::{Campaign, CampaignSpec, TargetSelection};
    let (q, data) = fixture();
    let eval = data.test.take(4);
    let target = MultId::new(1, 6);

    let campaign = Campaign::new(&q, PlatformConfig::default());
    let result = campaign
        .run(
            &CampaignSpec {
                selection: TargetSelection::Fixed(vec![vec![target]]),
                kinds: vec![FaultKind::Constant(1)],
                eval_images: 4,
                threads: 1,
                verbose: false,
                ..Default::default()
            },
            &eval,
        )
        .unwrap();

    let mut platform = EmulationPlatform::assemble(&q, PlatformConfig::default()).unwrap();
    platform.inject(&FaultConfig::new(vec![target], FaultKind::Constant(1)));
    let direct = platform.accuracy(&eval.images, &eval.labels).unwrap();
    assert_eq!(result.records[0].accuracy, direct);
}
