//! The golden-prefix guarantee, asserted through the process-wide
//! `nvfi_accel::golden_prefix_passes` / `nvfi_accel::golden_restores`
//! probes: a windowed campaign captures the fault-free prefix of each
//! evaluation image exactly **once** — however many fault configurations
//! its work list expands to — and every windowed work item *restores* the
//! checkpoint instead of recomputing the prefix.
//!
//! The probe counters are process-wide, so this test lives in its own
//! integration-test binary (cargo runs test binaries one at a time): no
//! concurrently running test can capture or restore in between the counter
//! reads.

use zynq_nvdla_fi::nvfi::campaign::{Campaign, CampaignSpec, TargetSelection};
use zynq_nvdla_fi::nvfi::{EmulationPlatform, PlatformConfig};
use zynq_nvdla_fi::nvfi_accel::{golden_prefix_passes, golden_restores, FaultKind};
use zynq_nvdla_fi::nvfi_compiler::regmap::MultId;
use zynq_nvdla_fi::nvfi_dataset::{SynthCifar, SynthCifarConfig};

#[test]
fn campaign_computes_the_golden_prefix_exactly_once_per_image() {
    let q = zynq_nvdla_fi::nvfi::experiments::untrained_quant_model(4, 7);
    let data = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 10,
        ..Default::default()
    })
    .generate();
    let probe = EmulationPlatform::assemble(&q, PlatformConfig::default()).unwrap();
    let total = probe.accel().total_mac_cycles().unwrap();
    let window = total / 2..total / 2 + total / 8;
    // Checkpoint stride at this window's boundary, for the budget test
    // below.
    let boundary = probe.accel().first_op_in_window(&window).unwrap();
    assert!(
        boundary > 0,
        "a mid-inference window has a non-empty prefix"
    );
    let stride: u64 = probe
        .plan()
        .live_in_surfaces(boundary)
        .iter()
        .map(|&(_, b)| b)
        .sum();
    // 3 target sets x 1 kind = 3 windowed work items over 2 threads: the
    // naive path would have recomputed the prefix of all 10 images for
    // every one of them.
    let spec = CampaignSpec {
        selection: TargetSelection::Fixed(vec![
            vec![MultId::new(0, 1)],
            vec![MultId::new(2, 3), MultId::new(5, 6)],
            MultId::all().collect(),
        ]),
        kinds: vec![FaultKind::Constant(131071)],
        eval_images: 10,
        threads: 2,
        fault_window: Some(window),
        ..Default::default()
    };
    let campaign = Campaign::new(&q, PlatformConfig::default());

    let prefix_before = golden_prefix_passes();
    let restore_before = golden_restores();
    let result = campaign.run(&spec, &data.test).unwrap();
    assert_eq!(result.records.len(), 3);
    assert_eq!(result.total_inferences, 4 * 10);
    assert_eq!(
        golden_prefix_passes() - prefix_before,
        10,
        "a windowed campaign must capture the golden prefix exactly once \
         per image (the GoldenActivationCache built in Campaign::run) — \
         any extra pass means per-work-item prefix recomputation crept \
         back in"
    );
    assert_eq!(
        golden_restores() - restore_before,
        3 * 10,
        "every windowed work item must restore each image's checkpoint"
    );

    // A cache budget that only holds 4 of the 10 images: exactly 4
    // captures, and only those images restore (the rest recompute their
    // prefix inside full inferences, which the probes do not count).
    let partial = CampaignSpec {
        golden_cache_bytes: stride as usize * 4,
        ..spec.clone()
    };
    let prefix_before = golden_prefix_passes();
    let restore_before = golden_restores();
    let _ = campaign.run(&partial, &data.test).unwrap();
    assert_eq!(golden_prefix_passes() - prefix_before, 4);
    assert_eq!(golden_restores() - restore_before, 3 * 4);

    // Disabled cache: no captures, no restores.
    let disabled = CampaignSpec {
        golden_cache_bytes: 0,
        ..spec.clone()
    };
    let prefix_before = golden_prefix_passes();
    let restore_before = golden_restores();
    let _ = campaign.run(&disabled, &data.test).unwrap();
    assert_eq!(golden_prefix_passes() - prefix_before, 0);
    assert_eq!(golden_restores() - restore_before, 0);

    // A window-free campaign never touches the golden machinery.
    let unwindowed = CampaignSpec {
        fault_window: None,
        ..spec
    };
    let prefix_before = golden_prefix_passes();
    let _ = campaign.run(&unwindowed, &data.test).unwrap();
    assert_eq!(golden_prefix_passes() - prefix_before, 0);
}
