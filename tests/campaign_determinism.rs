//! Reproducibility: identical seeds give identical campaign results, across
//! process lifetimes and worker-thread counts.

use zynq_nvdla_fi::nvfi::campaign::{Campaign, CampaignSpec, TargetSelection};
use zynq_nvdla_fi::nvfi::PlatformConfig;
use zynq_nvdla_fi::nvfi_accel::FaultKind;
use zynq_nvdla_fi::nvfi_dataset::{SynthCifar, SynthCifarConfig};

#[test]
fn same_seed_same_everything() {
    let q = zynq_nvdla_fi::nvfi::experiments::untrained_quant_model(4, 2);
    let data = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 8,
        ..Default::default()
    })
    .generate();
    let spec = CampaignSpec {
        selection: TargetSelection::RandomSubsets {
            k: 3,
            trials: 4,
            seed: 77,
        },
        kinds: vec![FaultKind::StuckAtZero, FaultKind::Constant(-1)],
        eval_images: 6,
        threads: 1,
        ..Default::default()
    };
    let campaign = Campaign::new(&q, PlatformConfig::default());
    let a = campaign.run(&spec, &data.test).unwrap();
    let b = campaign.run(&spec, &data.test).unwrap();
    assert_eq!(a.baseline_accuracy, b.baseline_accuracy);
    assert_eq!(a.records, b.records);

    // Different seed: different target draws.
    let spec2 = CampaignSpec {
        selection: TargetSelection::RandomSubsets {
            k: 3,
            trials: 4,
            seed: 78,
        },
        ..spec.clone()
    };
    let c = campaign.run(&spec2, &data.test).unwrap();
    let targets_a: Vec<_> = a.records.iter().map(|r| r.targets.clone()).collect();
    let targets_c: Vec<_> = c.records.iter().map(|r| r.targets.clone()).collect();
    assert_ne!(targets_a, targets_c);
}

/// The tentpole guarantee of device-pool sharding: a campaign whose work
/// list is narrower than the thread budget (here 1 configuration across 8
/// threads, so the whole budget becomes one wide pool) produces records
/// bit-identical to the single-device, single-threaded run.
#[test]
fn sharded_pool_matches_single_device() {
    let q = zynq_nvdla_fi::nvfi::experiments::untrained_quant_model(4, 9);
    let data = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 24,
        ..Default::default()
    })
    .generate();
    let mk = |threads, pool_devices| CampaignSpec {
        selection: TargetSelection::Fixed(vec![vec![
            zynq_nvdla_fi::nvfi_compiler::regmap::MultId::new(1, 3),
        ]]),
        kinds: vec![FaultKind::Constant(-1)],
        eval_images: 24,
        threads,
        pool_devices,
        ..Default::default()
    };
    let campaign = Campaign::new(&q, PlatformConfig::default());
    let single = campaign.run(&mk(1, 0), &data.test).unwrap();
    // threads > work items: all 8 devices shard the one configuration.
    let sharded = campaign.run(&mk(8, 0), &data.test).unwrap();
    // Explicit pool sizing must agree too.
    let pinned = campaign.run(&mk(8, 3), &data.test).unwrap();
    assert_eq!(single.baseline_accuracy, sharded.baseline_accuracy);
    assert_eq!(single.records, sharded.records);
    assert_eq!(single.records, pinned.records);
    assert_eq!(single.total_inferences, sharded.total_inferences);
    assert_eq!(single.total_inferences, pinned.total_inferences);
}

/// Shard granularity is a pure scheduling knob: any `shard_images` value
/// merges to the same records.
#[test]
fn shard_granularity_does_not_change_results() {
    let q = zynq_nvdla_fi::nvfi::experiments::untrained_quant_model(4, 21);
    let data = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 13,
        ..Default::default()
    })
    .generate();
    let spec = CampaignSpec {
        selection: TargetSelection::RandomSubsets {
            k: 2,
            trials: 2,
            seed: 3,
        },
        kinds: vec![FaultKind::StuckAtZero],
        eval_images: 13,
        threads: 5,
        ..Default::default()
    };
    let run_with_granularity = |shard_images| {
        let config = PlatformConfig {
            shard_images,
            ..Default::default()
        };
        Campaign::new(&q, config).run(&spec, &data.test).unwrap()
    };
    let a = run_with_granularity(0);
    let b = run_with_granularity(1);
    let c = run_with_granularity(7);
    assert_eq!(a.records, b.records);
    assert_eq!(a.records, c.records);
}

/// End-to-end coverage of the exact-engine degradation under transient
/// fault windows (`Accelerator::set_fault_window`), previously only covered
/// per-inference: a campaign with a window must produce identical records
/// through the sharded pool and the single-device path, because cycle
/// numbering is per-inference and thus placement-invariant.
#[test]
fn transient_window_campaign_is_shard_invariant() {
    let q = zynq_nvdla_fi::nvfi::experiments::untrained_quant_model(4, 15);
    let data = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 10,
        ..Default::default()
    })
    .generate();
    let all_mults: Vec<_> = zynq_nvdla_fi::nvfi_compiler::regmap::MultId::all().collect();
    let mk = |threads| CampaignSpec {
        selection: TargetSelection::Fixed(vec![all_mults.clone()]),
        kinds: vec![FaultKind::Constant(131071)],
        eval_images: 10,
        threads,
        // A mid-inference pulse: forces the exact engine (the fast path
        // cannot honour windows), so this drives the batched-classify
        // degradation end-to-end through Campaign::run.
        fault_window: Some(50..5_000),
        ..Default::default()
    };
    let campaign = Campaign::new(&q, PlatformConfig::default());
    let single = campaign.run(&mk(1), &data.test).unwrap();
    let sharded = campaign.run(&mk(6), &data.test).unwrap();
    assert_eq!(single.records, sharded.records);

    // Sanity: the pulse is really narrower than a permanent fault — the
    // same configuration without a window must not be *less* disruptive.
    let mut permanent_spec = mk(1);
    permanent_spec.fault_window = None;
    let permanent = campaign.run(&permanent_spec, &data.test).unwrap();
    assert!(
        permanent.records[0].outcomes.sdc >= single.records[0].outcomes.sdc,
        "a permanent full-array fault cannot corrupt fewer images than its pulse"
    );
}

/// Tentpole guarantee of the quantize-once hot path: classifying through
/// the campaign-lifetime borrowed-i8 set (`DevicePool::classify_i8` over a
/// `QuantizedEvalSet`) is bit-identical to the f32 quantize-per-call path,
/// across shard granularities and fault kinds — including the full-array
/// huge-constant fault and a fault-free pool.
#[test]
fn i8_path_matches_f32_path_across_shards_and_kinds() {
    use zynq_nvdla_fi::nvfi::pool::{DevicePool, QuantizedEvalSet};
    use zynq_nvdla_fi::nvfi_accel::FaultConfig;
    use zynq_nvdla_fi::nvfi_compiler::regmap::MultId;

    let q = zynq_nvdla_fi::nvfi::experiments::untrained_quant_model(4, 33);
    let data = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 14,
        ..Default::default()
    })
    .generate();
    let kinds = [
        None,
        Some(FaultKind::StuckAtZero),
        Some(FaultKind::Constant(-1)),
        Some(FaultKind::Constant(131071)),
    ];
    for shard_images in [0usize, 1, 5] {
        let config = PlatformConfig {
            shard_images,
            ..Default::default()
        };
        let mut pool = DevicePool::assemble(&q, config, 3).unwrap();
        let qset = QuantizedEvalSet::build(&q, &data.test.images);
        for kind in kinds {
            match kind {
                Some(k) => pool.inject(&FaultConfig::new(
                    vec![MultId::new(1, 2), MultId::new(4, 4)],
                    k,
                )),
                None => pool.clear_faults(),
            }
            let via_f32 = pool.classify(&data.test.images).unwrap();
            let via_i8 = pool.classify_i8(&qset).unwrap();
            assert_eq!(
                via_f32, via_i8,
                "i8/f32 parity broke (shard_images={shard_images}, kind={kind:?})"
            );
        }
    }
}

#[test]
#[should_panic(expected = "expands to no target sets")]
fn empty_fixed_selection_is_rejected() {
    let q = zynq_nvdla_fi::nvfi::experiments::untrained_quant_model(4, 2);
    let data = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 4,
        ..Default::default()
    })
    .generate();
    let spec = CampaignSpec {
        selection: TargetSelection::Fixed(vec![]),
        eval_images: 4,
        ..Default::default()
    };
    let _ = Campaign::new(&q, PlatformConfig::default()).run(&spec, &data.test);
}

#[test]
#[should_panic(expected = "expands to no target sets")]
fn zero_trial_selection_is_rejected() {
    let q = zynq_nvdla_fi::nvfi::experiments::untrained_quant_model(4, 2);
    let data = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 4,
        ..Default::default()
    })
    .generate();
    let spec = CampaignSpec {
        selection: TargetSelection::RandomSubsets {
            k: 3,
            trials: 0,
            seed: 1,
        },
        eval_images: 4,
        ..Default::default()
    };
    let _ = Campaign::new(&q, PlatformConfig::default()).run(&spec, &data.test);
}

#[test]
fn thread_count_does_not_change_results() {
    let q = zynq_nvdla_fi::nvfi::experiments::untrained_quant_model(4, 3);
    let data = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 8,
        ..Default::default()
    })
    .generate();
    let mk = |threads| CampaignSpec {
        selection: TargetSelection::ExhaustiveSingle,
        kinds: vec![FaultKind::Constant(1)],
        eval_images: 4,
        threads,
        ..Default::default()
    };
    let campaign = Campaign::new(&q, PlatformConfig::default());
    let single = campaign.run(&mk(1), &data.test).unwrap();
    let multi = campaign.run(&mk(3), &data.test).unwrap();
    assert_eq!(single.records, multi.records);
}
