//! Reproducibility: identical seeds give identical campaign results, across
//! process lifetimes and worker-thread counts.

use zynq_nvdla_fi::nvfi::campaign::{Campaign, CampaignSpec, TargetSelection};
use zynq_nvdla_fi::nvfi::PlatformConfig;
use zynq_nvdla_fi::nvfi_accel::FaultKind;
use zynq_nvdla_fi::nvfi_dataset::{SynthCifar, SynthCifarConfig};

#[test]
fn same_seed_same_everything() {
    let q = zynq_nvdla_fi::nvfi::experiments::untrained_quant_model(4, 2);
    let data = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 8,
        ..Default::default()
    })
    .generate();
    let spec = CampaignSpec {
        selection: TargetSelection::RandomSubsets {
            k: 3,
            trials: 4,
            seed: 77,
        },
        kinds: vec![FaultKind::StuckAtZero, FaultKind::Constant(-1)],
        eval_images: 6,
        threads: 1,
        ..Default::default()
    };
    let campaign = Campaign::new(&q, PlatformConfig::default());
    let a = campaign.run(&spec, &data.test).unwrap();
    let b = campaign.run(&spec, &data.test).unwrap();
    assert_eq!(a.baseline_accuracy, b.baseline_accuracy);
    assert_eq!(a.records, b.records);

    // Different seed: different target draws.
    let spec2 = CampaignSpec {
        selection: TargetSelection::RandomSubsets {
            k: 3,
            trials: 4,
            seed: 78,
        },
        ..spec.clone()
    };
    let c = campaign.run(&spec2, &data.test).unwrap();
    let targets_a: Vec<_> = a.records.iter().map(|r| r.targets.clone()).collect();
    let targets_c: Vec<_> = c.records.iter().map(|r| r.targets.clone()).collect();
    assert_ne!(targets_a, targets_c);
}

/// The tentpole guarantee of device-pool sharding: a campaign whose work
/// list is narrower than the thread budget (here 1 configuration across 8
/// threads, so the whole budget becomes one wide pool) produces records
/// bit-identical to the single-device, single-threaded run.
#[test]
fn sharded_pool_matches_single_device() {
    let q = zynq_nvdla_fi::nvfi::experiments::untrained_quant_model(4, 9);
    let data = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 24,
        ..Default::default()
    })
    .generate();
    let mk = |threads, pool_devices| CampaignSpec {
        selection: TargetSelection::Fixed(vec![vec![
            zynq_nvdla_fi::nvfi_compiler::regmap::MultId::new(1, 3),
        ]]),
        kinds: vec![FaultKind::Constant(-1)],
        eval_images: 24,
        threads,
        pool_devices,
        ..Default::default()
    };
    let campaign = Campaign::new(&q, PlatformConfig::default());
    let single = campaign.run(&mk(1, 0), &data.test).unwrap();
    // threads > work items: all 8 devices shard the one configuration.
    let sharded = campaign.run(&mk(8, 0), &data.test).unwrap();
    // Explicit pool sizing must agree too.
    let pinned = campaign.run(&mk(8, 3), &data.test).unwrap();
    assert_eq!(single.baseline_accuracy, sharded.baseline_accuracy);
    assert_eq!(single.records, sharded.records);
    assert_eq!(single.records, pinned.records);
    assert_eq!(single.total_inferences, sharded.total_inferences);
    assert_eq!(single.total_inferences, pinned.total_inferences);
}

/// Shard granularity is a pure scheduling knob: any `shard_images` value
/// merges to the same records.
#[test]
fn shard_granularity_does_not_change_results() {
    let q = zynq_nvdla_fi::nvfi::experiments::untrained_quant_model(4, 21);
    let data = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 13,
        ..Default::default()
    })
    .generate();
    let spec = CampaignSpec {
        selection: TargetSelection::RandomSubsets {
            k: 2,
            trials: 2,
            seed: 3,
        },
        kinds: vec![FaultKind::StuckAtZero],
        eval_images: 13,
        threads: 5,
        ..Default::default()
    };
    let run_with_granularity = |shard_images| {
        let config = PlatformConfig {
            shard_images,
            ..Default::default()
        };
        Campaign::new(&q, config).run(&spec, &data.test).unwrap()
    };
    let a = run_with_granularity(0);
    let b = run_with_granularity(1);
    let c = run_with_granularity(7);
    assert_eq!(a.records, b.records);
    assert_eq!(a.records, c.records);
}

/// End-to-end coverage of the exact-engine degradation under transient
/// fault windows (`Accelerator::set_fault_window`), previously only covered
/// per-inference: a campaign with a window must produce identical records
/// through the sharded pool and the single-device path, because cycle
/// numbering is per-inference and thus placement-invariant.
#[test]
fn transient_window_campaign_is_shard_invariant() {
    let q = zynq_nvdla_fi::nvfi::experiments::untrained_quant_model(4, 15);
    let data = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 10,
        ..Default::default()
    })
    .generate();
    let all_mults: Vec<_> = zynq_nvdla_fi::nvfi_compiler::regmap::MultId::all().collect();
    let mk = |threads| CampaignSpec {
        selection: TargetSelection::Fixed(vec![all_mults.clone()]),
        kinds: vec![FaultKind::Constant(131071)],
        eval_images: 10,
        threads,
        // A mid-inference pulse: forces the exact engine (the fast path
        // cannot honour windows), so this drives the batched-classify
        // degradation end-to-end through Campaign::run.
        fault_window: Some(50..5_000),
        ..Default::default()
    };
    let campaign = Campaign::new(&q, PlatformConfig::default());
    let single = campaign.run(&mk(1), &data.test).unwrap();
    let sharded = campaign.run(&mk(6), &data.test).unwrap();
    assert_eq!(single.records, sharded.records);

    // Sanity: the pulse is really narrower than a permanent fault — the
    // same configuration without a window must not be *less* disruptive.
    let mut permanent_spec = mk(1);
    permanent_spec.fault_window = None;
    let permanent = campaign.run(&permanent_spec, &data.test).unwrap();
    assert!(
        permanent.records[0].outcomes.sdc >= single.records[0].outcomes.sdc,
        "a permanent full-array fault cannot corrupt fewer images than its pulse"
    );
}

/// Tentpole guarantee of the quantize-once hot path: classifying through
/// the campaign-lifetime borrowed-i8 set (`DevicePool::classify_i8` over a
/// `QuantizedEvalSet`) is bit-identical to the f32 quantize-per-call path,
/// across shard granularities and fault kinds — including the full-array
/// huge-constant fault and a fault-free pool.
#[test]
fn i8_path_matches_f32_path_across_shards_and_kinds() {
    use zynq_nvdla_fi::nvfi::pool::{DevicePool, QuantizedEvalSet};
    use zynq_nvdla_fi::nvfi_accel::FaultConfig;
    use zynq_nvdla_fi::nvfi_compiler::regmap::MultId;

    let q = zynq_nvdla_fi::nvfi::experiments::untrained_quant_model(4, 33);
    let data = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 14,
        ..Default::default()
    })
    .generate();
    let kinds = [
        None,
        Some(FaultKind::StuckAtZero),
        Some(FaultKind::Constant(-1)),
        Some(FaultKind::Constant(131071)),
    ];
    for shard_images in [0usize, 1, 5] {
        let config = PlatformConfig {
            shard_images,
            ..Default::default()
        };
        let mut pool = DevicePool::assemble(&q, config, 3).unwrap();
        let qset = QuantizedEvalSet::build(&q, &data.test.images);
        for kind in kinds {
            match kind {
                Some(k) => pool.inject(&FaultConfig::new(
                    vec![MultId::new(1, 2), MultId::new(4, 4)],
                    k,
                )),
                None => pool.clear_faults(),
            }
            let via_f32 = pool.classify(&data.test.images).unwrap();
            let via_i8 = pool.classify_i8(&qset).unwrap();
            assert_eq!(
                via_f32, via_i8,
                "i8/f32 parity broke (shard_images={shard_images}, kind={kind:?})"
            );
        }
    }
}

/// The tentpole guarantee of op-scoped execution + golden-prefix caching:
/// a windowed campaign produces bit-identical `CampaignResult` records
/// through all three execution strategies —
///
/// 1. **all-exact** (`ExecMode::Exact`): every op of every inference
///    through the per-product engine, the pre-PR behaviour;
/// 2. **op-scoped** (`ExecMode::Auto`, cache disabled): fast prefix, exact
///    window ops, fast suffix, prefix recomputed per work item;
/// 3. **op-scoped + golden cache** (the default): the fault-free prefix is
///    captured once per image and restored per work item.
#[test]
fn windowed_campaign_three_paths_are_bit_identical() {
    use zynq_nvdla_fi::nvfi_accel::{AccelConfig, ExecMode};

    let q = zynq_nvdla_fi::nvfi::experiments::untrained_quant_model(4, 9);
    let data = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 9,
        ..Default::default()
    })
    .generate();
    // A pulse over the third quarter of the inference: a real golden prefix
    // (half the plan), a real fast suffix (the last quarter), and — on this
    // seed — visible prediction corruption, so the bit-identity assertions
    // below compare non-trivial records.
    let total = zynq_nvdla_fi::nvfi::EmulationPlatform::assemble(&q, PlatformConfig::default())
        .unwrap()
        .accel()
        .total_mac_cycles()
        .unwrap();
    let window = total / 2..total * 3 / 4;
    let mk = |mode, golden_cache_bytes| {
        let config = PlatformConfig {
            accel: AccelConfig {
                mode,
                ..Default::default()
            },
            ..Default::default()
        };
        let spec = CampaignSpec {
            selection: TargetSelection::Fixed(vec![
                vec![zynq_nvdla_fi::nvfi_compiler::regmap::MultId::new(1, 3)],
                zynq_nvdla_fi::nvfi_compiler::regmap::MultId::all().collect(),
            ]),
            kinds: vec![FaultKind::Constant(131071)],
            eval_images: 9,
            threads: 3,
            fault_window: Some(window.clone()),
            golden_cache_bytes,
            ..Default::default()
        };
        Campaign::new(&q, config).run(&spec, &data.test).unwrap()
    };
    let all_exact = mk(ExecMode::Exact, 0);
    let op_scoped = mk(ExecMode::Auto, 0);
    let cached = mk(ExecMode::Auto, usize::MAX);
    assert_eq!(all_exact.baseline_accuracy, op_scoped.baseline_accuracy);
    assert_eq!(all_exact.baseline_accuracy, cached.baseline_accuracy);
    assert_eq!(
        all_exact.records, op_scoped.records,
        "op-scoped execution changed windowed records"
    );
    assert_eq!(
        all_exact.records, cached.records,
        "golden-prefix restore changed windowed records"
    );
    assert_eq!(all_exact.total_inferences, cached.total_inferences);
    // Sanity: the pulse really corrupts something, so the equalities above
    // compare non-trivial records.
    assert!(
        cached.records.iter().any(|r| r.outcomes.sdc > 0),
        "a mid-inference all-lane max-value pulse must corrupt something"
    );
}

/// A golden-cache byte budget too small for the whole evaluation set
/// checkpoints only the leading images; the rest recompute their prefix.
/// Records must be bit-identical for every budget, including zero.
#[test]
fn golden_cache_budget_fallback_is_bit_identical() {
    let q = zynq_nvdla_fi::nvfi::experiments::untrained_quant_model(4, 29);
    let data = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 7,
        ..Default::default()
    })
    .generate();
    let total = zynq_nvdla_fi::nvfi::EmulationPlatform::assemble(&q, PlatformConfig::default())
        .unwrap()
        .accel()
        .total_mac_cycles()
        .unwrap();
    let mk = |golden_cache_bytes| CampaignSpec {
        selection: TargetSelection::Fixed(vec![zynq_nvdla_fi::nvfi_compiler::regmap::MultId::all(
        )
        .collect()]),
        kinds: vec![FaultKind::Constant(131071)],
        eval_images: 7,
        threads: 2,
        fault_window: Some(total / 2..total / 2 + 500),
        golden_cache_bytes,
        ..Default::default()
    };
    let campaign = Campaign::new(&q, PlatformConfig::default());
    let unlimited = campaign.run(&mk(usize::MAX), &data.test).unwrap();
    // Enough for roughly half the images (stride is a few KiB on this
    // fixture), and a budget of one byte (holds zero images).
    let partial = campaign.run(&mk(16 * 1024), &data.test).unwrap();
    let starved = campaign.run(&mk(1), &data.test).unwrap();
    let disabled = campaign.run(&mk(0), &data.test).unwrap();
    assert_eq!(unlimited.records, partial.records);
    assert_eq!(unlimited.records, starved.records);
    assert_eq!(unlimited.records, disabled.records);
}

/// A transient window that cannot overlap any MAC cycle of the compiled
/// plan used to run a silent fault-free campaign at exact-engine cost; now
/// it is rejected up front with the engine's message.
#[test]
fn window_past_the_end_is_rejected() {
    let q = zynq_nvdla_fi::nvfi::experiments::untrained_quant_model(4, 2);
    let data = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 4,
        ..Default::default()
    })
    .generate();
    let total = zynq_nvdla_fi::nvfi::EmulationPlatform::assemble(&q, PlatformConfig::default())
        .unwrap()
        .accel()
        .total_mac_cycles()
        .unwrap();
    let spec = CampaignSpec {
        selection: TargetSelection::ExhaustiveSingle,
        eval_images: 4,
        fault_window: Some(total * 2..total * 3),
        ..Default::default()
    };
    let err = Campaign::new(&q, PlatformConfig::default())
        .run(&spec, &data.test)
        .unwrap_err();
    assert!(
        err.to_string().contains("cannot overlap any MAC cycle"),
        "unexpected error: {err}"
    );
}

#[test]
#[should_panic(expected = "expands to no target sets")]
fn empty_fixed_selection_is_rejected() {
    let q = zynq_nvdla_fi::nvfi::experiments::untrained_quant_model(4, 2);
    let data = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 4,
        ..Default::default()
    })
    .generate();
    let spec = CampaignSpec {
        selection: TargetSelection::Fixed(vec![]),
        eval_images: 4,
        ..Default::default()
    };
    let _ = Campaign::new(&q, PlatformConfig::default()).run(&spec, &data.test);
}

#[test]
#[should_panic(expected = "expands to no target sets")]
fn zero_trial_selection_is_rejected() {
    let q = zynq_nvdla_fi::nvfi::experiments::untrained_quant_model(4, 2);
    let data = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 4,
        ..Default::default()
    })
    .generate();
    let spec = CampaignSpec {
        selection: TargetSelection::RandomSubsets {
            k: 3,
            trials: 0,
            seed: 1,
        },
        eval_images: 4,
        ..Default::default()
    };
    let _ = Campaign::new(&q, PlatformConfig::default()).run(&spec, &data.test);
}

#[test]
fn thread_count_does_not_change_results() {
    let q = zynq_nvdla_fi::nvfi::experiments::untrained_quant_model(4, 3);
    let data = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 8,
        ..Default::default()
    })
    .generate();
    let mk = |threads| CampaignSpec {
        selection: TargetSelection::ExhaustiveSingle,
        kinds: vec![FaultKind::Constant(1)],
        eval_images: 4,
        threads,
        ..Default::default()
    };
    let campaign = Campaign::new(&q, PlatformConfig::default());
    let single = campaign.run(&mk(1), &data.test).unwrap();
    let multi = campaign.run(&mk(3), &data.test).unwrap();
    assert_eq!(single.records, multi.records);
}
