//! Reproducibility: identical seeds give identical campaign results, across
//! process lifetimes and worker-thread counts.

use zynq_nvdla_fi::nvfi::campaign::{Campaign, CampaignSpec, TargetSelection};
use zynq_nvdla_fi::nvfi::PlatformConfig;
use zynq_nvdla_fi::nvfi_accel::FaultKind;
use zynq_nvdla_fi::nvfi_dataset::{SynthCifar, SynthCifarConfig};

#[test]
fn same_seed_same_everything() {
    let q = zynq_nvdla_fi::nvfi::experiments::untrained_quant_model(4, 2);
    let data = SynthCifar::new(SynthCifarConfig { train: 0, test: 8, ..Default::default() })
        .generate();
    let spec = CampaignSpec {
        selection: TargetSelection::RandomSubsets { k: 3, trials: 4, seed: 77 },
        kinds: vec![FaultKind::StuckAtZero, FaultKind::Constant(-1)],
        eval_images: 6,
        threads: 1,
        verbose: false,
    };
    let campaign = Campaign::new(&q, PlatformConfig::default());
    let a = campaign.run(&spec, &data.test).unwrap();
    let b = campaign.run(&spec, &data.test).unwrap();
    assert_eq!(a.baseline_accuracy, b.baseline_accuracy);
    assert_eq!(a.records, b.records);

    // Different seed: different target draws.
    let spec2 = CampaignSpec {
        selection: TargetSelection::RandomSubsets { k: 3, trials: 4, seed: 78 },
        ..spec.clone()
    };
    let c = campaign.run(&spec2, &data.test).unwrap();
    let targets_a: Vec<_> = a.records.iter().map(|r| r.targets.clone()).collect();
    let targets_c: Vec<_> = c.records.iter().map(|r| r.targets.clone()).collect();
    assert_ne!(targets_a, targets_c);
}

#[test]
fn thread_count_does_not_change_results() {
    let q = zynq_nvdla_fi::nvfi::experiments::untrained_quant_model(4, 3);
    let data = SynthCifar::new(SynthCifarConfig { train: 0, test: 8, ..Default::default() })
        .generate();
    let mk = |threads| CampaignSpec {
        selection: TargetSelection::ExhaustiveSingle,
        kinds: vec![FaultKind::Constant(1)],
        eval_images: 4,
        threads,
        verbose: false,
    };
    let campaign = Campaign::new(&q, PlatformConfig::default());
    let single = campaign.run(&mk(1), &data.test).unwrap();
    let multi = campaign.run(&mk(3), &data.test).unwrap();
    assert_eq!(single.records, multi.records);
}
