//! End-to-end integration: SynthCIFAR -> train -> fold -> quantize ->
//! compile -> emulated accelerator, with every stage's invariant checked.

use zynq_nvdla_fi::nvfi::{EmulationPlatform, PlatformConfig};
use zynq_nvdla_fi::nvfi_dataset::{SynthCifar, SynthCifarConfig};
use zynq_nvdla_fi::nvfi_nn::fold::fold_resnet;
use zynq_nvdla_fi::nvfi_nn::layers::Layer as _;
use zynq_nvdla_fi::nvfi_nn::resnet::ResNet;
use zynq_nvdla_fi::nvfi_nn::train::{TrainConfig, Trainer};
use zynq_nvdla_fi::nvfi_quant::{quantize, QuantConfig};

#[test]
fn full_pipeline_trains_and_deploys() {
    // 1. Data: small but learnable.
    let data = SynthCifar::new(SynthCifarConfig {
        train: 200,
        test: 60,
        noise: 0.3,
        ..Default::default()
    })
    .generate();

    // 2. Train a tiny network for a few epochs.
    let mut net = ResNet::new(4, &[1, 1], 10, 11);
    let stats = Trainer::new(TrainConfig {
        epochs: 4,
        batch: 16,
        ..Default::default()
    })
    .fit(&mut net, &data.train, &data.test);
    let float_acc = stats.final_test_acc();
    assert!(
        float_acc > 0.25,
        "float training should beat chance, got {float_acc:.2}"
    );

    // 3. Fold: eval-mode behaviour must be preserved.
    let deploy = fold_resnet(&net, 32);
    let img = data.test.images.slice_image(0);
    let a = net.forward(&img, false);
    let b = deploy.forward(&img);
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert!((x - y).abs() < 1e-2, "folding changed logits: {x} vs {y}");
    }

    // 4. Quantize: int8 accuracy close to float.
    let q = quantize(
        &deploy,
        &data.train.take(64).images,
        &QuantConfig::default(),
    )
    .unwrap();
    let int8_acc = q.accuracy(&data.test.images, &data.test.labels, 1);
    assert!(
        (float_acc - int8_acc).abs() < 0.15,
        "quantization lost too much: float {float_acc:.2} vs int8 {int8_acc:.2}"
    );

    // 5. The emulated accelerator matches the CPU reference bit-exactly.
    let mut platform = EmulationPlatform::assemble(&q, PlatformConfig::default()).unwrap();
    let accel_acc = platform
        .accuracy(&data.test.images, &data.test.labels)
        .unwrap();
    assert_eq!(
        accel_acc, int8_acc,
        "accelerator must be bit-exact vs CPU reference"
    );

    // 6. The cycle model reports plausible numbers for a 187.5 MHz device.
    let ms = platform.modeled_latency_ms();
    assert!(
        ms > 0.01 && ms < 1000.0,
        "modelled latency {ms} ms out of range"
    );
}

#[test]
fn accelerator_handles_batches_of_any_size() {
    let q = zynq_nvdla_fi::nvfi::experiments::untrained_quant_model(4, 9);
    let data = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 5,
        ..Default::default()
    })
    .generate();
    let mut platform = EmulationPlatform::assemble(&q, PlatformConfig::default()).unwrap();
    let preds = platform.classify(&data.test.images).unwrap();
    assert_eq!(preds.len(), 5);
    assert!(preds.iter().all(|&p| p < 10));
}
